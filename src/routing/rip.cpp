#include "routing/rip.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"
#include "common/hash.h"
#include "obs/observability.h"

namespace netco::routing {

RipSpeaker::RipSpeaker(iproute::LegacyRouter& router, RipConfig config)
    : router_(router),
      config_(config),
      wheel_(router.datapath_simulator(),
             sim::TimerWheelConfig{.tick = config.wheel_tick}),
      obs_(&obs::global()) {
  transport_ = [this](device::PortIndex port, net::Packet packet) {
    router_.raw_output(port, std::move(packet));
  };
}

RipSpeaker::~RipSpeaker() {
  if (started_) router_.set_local_delivery(nullptr);
}

void RipSpeaker::add_connected(net::Ipv4Address prefix, int len,
                               device::PortIndex port) {
  NETCO_ASSERT(len >= 0 && len <= 32);
  NETCO_ASSERT(find(prefix, static_cast<std::uint8_t>(len)) < 0);
  const std::uint32_t slot = allocate_slot();
  Route& route = routes_[slot];
  route.prefix = prefix;
  route.len = static_cast<std::uint8_t>(len);
  route.metric = 1;
  route.port = port;
  route.next_hop = net::Ipv4Address{};
  route.next_mac = net::MacAddress{};
  route.connected = true;
  route.live = true;
}

void RipSpeaker::add_neighbor(RipNeighbor neighbor) {
  NETCO_ASSERT_MSG(!started_, "add_neighbor before start()");
  neighbors_.push_back(neighbor);
}

void RipSpeaker::start() {
  NETCO_ASSERT_MSG(!started_, "RipSpeaker::start is one-shot");
  started_ = true;
  router_.set_local_delivery([this](device::PortIndex in_port,
                                    const net::ParsedPacket& parsed,
                                    const net::Packet& packet) {
    handle_datagram(in_port, parsed, packet);
  });
  wheel_.schedule_after(config_.first_update, &RipSpeaker::on_periodic, this,
                        0);
}

std::optional<RipRouteView> RipSpeaker::route(net::Ipv4Address prefix,
                                              int len) const {
  const std::int32_t idx = find(prefix, static_cast<std::uint8_t>(len));
  if (idx < 0) return std::nullopt;
  const Route& r = routes_[static_cast<std::size_t>(idx)];
  return RipRouteView{.prefix = r.prefix,
                      .len = r.len,
                      .metric = r.metric,
                      .port = r.port,
                      .next_hop = r.next_hop,
                      .connected = r.connected};
}

std::vector<RipRouteView> RipSpeaker::table() const {
  std::vector<RipRouteView> out;
  out.reserve(routes_.size());
  for (const Route& r : routes_) {
    if (!r.live) continue;
    out.push_back(RipRouteView{.prefix = r.prefix,
                               .len = r.len,
                               .metric = r.metric,
                               .port = r.port,
                               .next_hop = r.next_hop,
                               .connected = r.connected});
  }
  return out;
}

// --- timer trampolines -------------------------------------------------------

void RipSpeaker::on_periodic(void* ctx, std::uint64_t) {
  auto* self = static_cast<RipSpeaker*>(ctx);
  self->send_updates();
  self->wheel_.schedule_after(self->config_.update_period,
                              &RipSpeaker::on_periodic, self, 0);
}

void RipSpeaker::on_triggered(void* ctx, std::uint64_t) {
  auto* self = static_cast<RipSpeaker*>(ctx);
  self->triggered_pending_ = false;
  ++self->stats_.triggered_updates;
  self->send_updates();
}

void RipSpeaker::on_timeout(void* ctx, std::uint64_t slot) {
  auto* self = static_cast<RipSpeaker*>(ctx);
  Route& route = self->routes_[static_cast<std::size_t>(slot)];
  ++self->stats_.routes_timed_out;
  self->obs_->tracer.emit(
      self->router_.datapath_simulator().now().ns(),
      obs::TraceEvent::kRoutingRouteTimeout,
      hash_mix(route.prefix.value(), route.len), self->router_.name());
  self->invalidate(static_cast<std::uint32_t>(slot));
}

void RipSpeaker::on_gc(void* ctx, std::uint64_t slot) {
  auto* self = static_cast<RipSpeaker*>(ctx);
  ++self->stats_.routes_gced;
  self->remove(static_cast<std::uint32_t>(slot));
}

// --- receive path ------------------------------------------------------------

void RipSpeaker::handle_datagram(device::PortIndex in_port,
                                 const net::ParsedPacket& parsed,
                                 const net::Packet& packet) {
  if (!is_rip_datagram(parsed)) return;  // other protocols are not ours
  const RipNeighbor* neighbor = nullptr;
  for (const RipNeighbor& candidate : neighbors_) {
    if (candidate.ip == parsed.ipv4->src && candidate.port == in_port) {
      neighbor = &candidate;
      break;
    }
  }
  const auto message = parse(packet.slice(
      parsed.payload_offset, packet.size() - parsed.payload_offset));
  if (neighbor == nullptr || !message) {
    ++stats_.malformed_dropped;
    return;
  }
  ++stats_.updates_received;
  obs_->tracer.emit(router_.datapath_simulator().now().ns(),
                    obs::TraceEvent::kRoutingUpdateRx, packet.content_hash(),
                    router_.name(), -1,
                    static_cast<std::uint32_t>(packet.size()));
  for (const RipEntry& entry : message->entries) {
    if (entry.len > 32) continue;
    process_entry(*neighbor, entry);
  }
}

void RipSpeaker::process_entry(const RipNeighbor& neighbor,
                               const RipEntry& entry) {
  // Bellman–Ford relaxation, RFC 2453 §3.9.2. A malicious metric below 1
  // (route poisoning advertises 0) still clamps to offered >= 1.
  const std::uint8_t offered = static_cast<std::uint8_t>(
      std::min<int>(entry.metric + 1, kRipInfinity));
  const std::int32_t idx = find(entry.prefix, entry.len);

  if (idx < 0) {
    if (offered >= kRipInfinity) return;  // nothing to withdraw
    const std::uint32_t slot = allocate_slot();
    Route& route = routes_[slot];
    route.prefix = entry.prefix;
    route.len = entry.len;
    route.metric = offered;
    route.port = neighbor.port;
    route.next_hop = neighbor.ip;
    route.next_mac = neighbor.mac;
    route.connected = false;
    route.live = true;
    router_.add_route(route.prefix, route.len,
                      iproute::NextHop{.port = route.port,
                                       .next_mac = route.next_mac});
    arm_timeout(slot);
    note_change(route);
    schedule_triggered();
    return;
  }

  Route& route = routes_[static_cast<std::size_t>(idx)];
  if (route.connected) return;  // directly attached networks never move

  if (route.next_hop == neighbor.ip && route.port == neighbor.port) {
    // News from the route's own next hop is authoritative either way.
    if (offered == route.metric) {
      if (route.metric < kRipInfinity) arm_timeout(static_cast<std::uint32_t>(idx));
      return;
    }
    if (offered >= kRipInfinity) {
      if (route.metric < kRipInfinity) {
        wheel_.cancel(route.timeout_timer);
        route.timeout_timer = sim::TimerWheel::kInvalidTimerId;
        invalidate(static_cast<std::uint32_t>(idx));
      }
      return;
    }
    const bool was_dead = route.metric >= kRipInfinity;
    route.metric = offered;
    if (was_dead) {
      wheel_.cancel(route.gc_timer);
      route.gc_timer = sim::TimerWheel::kInvalidTimerId;
      router_.add_route(route.prefix, route.len,
                        iproute::NextHop{.port = route.port,
                                         .next_mac = route.next_mac});
    }
    arm_timeout(static_cast<std::uint32_t>(idx));
    note_change(route);
    schedule_triggered();
    return;
  }

  if (offered < route.metric) {
    // A strictly better path through another neighbor replaces the route
    // (and resurrects one sitting in its garbage-collection window).
    wheel_.cancel(route.gc_timer);
    route.gc_timer = sim::TimerWheel::kInvalidTimerId;
    route.metric = offered;
    route.port = neighbor.port;
    route.next_hop = neighbor.ip;
    route.next_mac = neighbor.mac;
    router_.add_route(route.prefix, route.len,
                      iproute::NextHop{.port = route.port,
                                       .next_mac = route.next_mac});
    arm_timeout(static_cast<std::uint32_t>(idx));
    note_change(route);
    schedule_triggered();
  }
}

// --- announcement path -------------------------------------------------------

void RipSpeaker::send_updates() {
  for (const RipNeighbor& neighbor : neighbors_) {
    send_update_to(neighbor);
  }
}

void RipSpeaker::send_update_to(const RipNeighbor& neighbor) {
  NETCO_ASSERT(neighbor.port < router_.interfaces().size());
  const iproute::Interface& iface = router_.interfaces()[neighbor.port];
  RipMessage message;
  message.seq = seq_++;
  for (const Route& route : routes_) {
    if (!route.live) continue;
    // Split horizon with poisoned reverse: routes learned through this
    // neighbor are advertised back to it as unreachable.
    const bool poisoned = !route.connected &&
                          route.next_hop == neighbor.ip &&
                          route.port == neighbor.port;
    message.entries.push_back(RipEntry{
        .prefix = route.prefix,
        .len = route.len,
        .metric = poisoned ? kRipInfinity : route.metric});
  }
  const std::vector<std::byte> payload = serialize(message);
  net::Packet packet = net::build_udp(
      net::EthernetHeader{.dst = neighbor.mac, .src = iface.mac},
      std::nullopt,
      net::Ipv4Header{.src = iface.ip,
                      .dst = neighbor.ip,
                      .proto = net::IpProto::Udp,
                      .ttl = 2,
                      .identification = static_cast<std::uint16_t>(message.seq)},
      net::UdpHeader{.src_port = kRipPort, .dst_port = kRipPort}, payload);
  ++stats_.updates_sent;
  obs_->tracer.emit(router_.datapath_simulator().now().ns(),
                    obs::TraceEvent::kRoutingUpdateTx, packet.content_hash(),
                    router_.name(), -1,
                    static_cast<std::uint32_t>(packet.size()));
  transport_(neighbor.port, std::move(packet));
}

// --- table bookkeeping -------------------------------------------------------

void RipSpeaker::arm_timeout(std::uint32_t slot) {
  Route& route = routes_[slot];
  wheel_.cancel(route.timeout_timer);
  route.timeout_timer =
      wheel_.schedule_after(config_.timeout, &RipSpeaker::on_timeout, this,
                            slot);
}

void RipSpeaker::invalidate(std::uint32_t slot) {
  Route& route = routes_[slot];
  route.metric = kRipInfinity;
  router_.remove_route(route.prefix, route.len);
  wheel_.cancel(route.gc_timer);
  route.gc_timer =
      wheel_.schedule_after(config_.gc, &RipSpeaker::on_gc, this, slot);
  note_change(route);
  schedule_triggered();
}

void RipSpeaker::remove(std::uint32_t slot) {
  Route& route = routes_[slot];
  wheel_.cancel(route.timeout_timer);
  wheel_.cancel(route.gc_timer);
  route.timeout_timer = sim::TimerWheel::kInvalidTimerId;
  route.gc_timer = sim::TimerWheel::kInvalidTimerId;
  route.live = false;
  free_slots_.push_back(slot);
}

void RipSpeaker::schedule_triggered() {
  if (!started_ || triggered_pending_) return;
  triggered_pending_ = true;
  wheel_.schedule_after(config_.triggered_delay, &RipSpeaker::on_triggered,
                        this, 0);
}

void RipSpeaker::note_change(const Route& route) {
  ++stats_.route_changes;
  obs_->tracer.emit(
      router_.datapath_simulator().now().ns(),
      obs::TraceEvent::kRoutingRouteChange,
      hash_mix(route.prefix.value(),
               (static_cast<std::uint64_t>(route.len) << 24) |
                   (static_cast<std::uint64_t>(route.metric) << 16) |
                   static_cast<std::uint64_t>(route.port)),
      router_.name());
}

std::int32_t RipSpeaker::find(net::Ipv4Address prefix,
                              std::uint8_t len) const {
  for (std::size_t i = 0; i < routes_.size(); ++i) {
    const Route& route = routes_[i];
    if (route.live && route.prefix == prefix && route.len == len) {
      return static_cast<std::int32_t>(i);
    }
  }
  return -1;
}

std::uint32_t RipSpeaker::allocate_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  routes_.emplace_back();
  return static_cast<std::uint32_t>(routes_.size() - 1);
}

}  // namespace netco::routing
