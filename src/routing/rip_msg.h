// RIP-v2-style announcement wire format (simplified RFC 2453).
//
// Announcements are plain UDP datagrams (port 520) so they traverse the
// simulated links — and the k-way combiner circuit — exactly like data
// traffic. The format keeps the RFC's shape (command/version header, a
// list of prefix/metric entries) but swaps the address-family boilerplate
// for a 32-bit sequence number: periodic updates from one speaker would
// otherwise be byte-identical, and the compare element keys entries by
// packet content hash, so consecutive announcements must be wire-unique
// for the quorum protocol to treat each one as its own lifecycle.
//
// All multi-byte fields are big-endian (network order), matching the rest
// of the wire layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/headers.h"
#include "net/packet.h"

namespace netco::routing {

/// UDP port RIP speakers send from and listen on (RFC 2453 §4).
inline constexpr std::uint16_t kRipPort = 520;
inline constexpr std::uint8_t kRipCommandResponse = 2;
inline constexpr std::uint8_t kRipVersion = 2;
/// The distance-vector infinity: metric 16 = unreachable.
inline constexpr std::uint8_t kRipInfinity = 16;

/// Fixed wire sizes (header, per-entry) and the metric byte's offset
/// inside an entry — exported so control-plane adversaries can rewrite
/// metrics at exact wire positions without reserializing.
inline constexpr std::size_t kRipHeaderBytes = 8;
inline constexpr std::size_t kRipEntryBytes = 8;
inline constexpr std::size_t kRipEntryMetricOffset = 5;

/// One advertised route: prefix/len at the given hop-count metric.
struct RipEntry {
  net::Ipv4Address prefix;
  std::uint8_t len = 0;
  std::uint8_t metric = kRipInfinity;

  friend bool operator==(const RipEntry&, const RipEntry&) = default;
};

/// One announcement: header + entry list.
struct RipMessage {
  std::uint8_t command = kRipCommandResponse;
  std::uint8_t version = kRipVersion;
  /// Per-speaker send counter; makes every announcement wire-unique.
  std::uint32_t seq = 0;
  std::vector<RipEntry> entries;

  friend bool operator==(const RipMessage&, const RipMessage&) = default;
};

/// Serializes to the wire layout described above.
[[nodiscard]] std::vector<std::byte> serialize(const RipMessage& message);

/// Parses a serialize() rendering; nullopt on truncated/garbage payloads
/// or a version/command mismatch.
[[nodiscard]] std::optional<RipMessage> parse(
    std::span<const std::byte> payload);

/// True when `parsed` is an IPv4 UDP datagram addressed to the RIP port.
[[nodiscard]] bool is_rip_datagram(const net::ParsedPacket& parsed);

/// Rewrites every entry metric of a RIP announcement in place through
/// `fn(old_metric)` and repairs the IP/UDP checksums, so the lie survives
/// a checksum-verifying receiver. Returns false (packet untouched) when
/// the packet is not a well-formed RIP datagram. The mutation is a pure
/// function of the wire bytes — two liars applying the same `fn` emit
/// bit-identical copies, which is exactly what defeats a k=3 quorum.
bool rewrite_metrics(net::Packet& packet, const net::ParsedPacket& parsed,
                     std::uint8_t (*fn)(std::uint8_t));

}  // namespace netco::routing
