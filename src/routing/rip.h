// RipSpeaker: a RIP-v2-style distance-vector routing process attached to
// one iproute::LegacyRouter.
//
// Each speaker keeps a Bellman–Ford route table (connected networks at
// metric 1 plus learned routes at neighbor metric + 1, infinity = 16),
// exchanges full-table announcements with explicitly configured unicast
// neighbors (routing/rip_msg.h — plain UDP datagrams, so the control
// traffic can ride through a NetCo combiner circuit exactly like data),
// and installs every live learned route into the router's LPM forwarding
// plane. Loop suppression follows RFC 2453: split horizon with poisoned
// reverse on every announcement, periodic full updates, coalesced
// triggered updates on change, and per-route timeout → garbage-collection
// timers.
//
// Timer discipline: *all* speaker timers — periodic, triggered, per-route
// timeout and GC — live on a sim::TimerWheel (PR 8), so a steady-state
// routing plane costs the simulator's binary heap exactly one re-armed
// anchor event no matter how many routes are ticking. The speaker itself
// never calls Simulator::schedule_*; tests/routing_test.cpp asserts the
// heap stays at the lone anchor through steady-state periods.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "iproute/legacy_router.h"
#include "net/headers.h"
#include "obs/observability.h"
#include "routing/rip_msg.h"
#include "sim/timer_wheel.h"

namespace netco::routing {

/// One unicast announcement peer: reachable out `port`, addressed to
/// `ip`/`mac` (no ARP — the control plane must work before convergence).
struct RipNeighbor {
  device::PortIndex port = 0;
  net::Ipv4Address ip;
  net::MacAddress mac;
};

/// Protocol timing. The defaults are simulation-scale (milliseconds where
/// the RFC uses tens of seconds) so convergence experiments fit in a few
/// simulated seconds; the ratios match the RFC (timeout = 5 × period).
struct RipConfig {
  sim::Duration update_period = sim::Duration::milliseconds(200);
  /// A route not re-confirmed within this window is invalidated.
  sim::Duration timeout = sim::Duration::milliseconds(1000);
  /// An invalidated route is advertised at metric 16 for this long, then
  /// deleted.
  sim::Duration gc = sim::Duration::milliseconds(400);
  /// Coalescing delay for triggered updates (RFC 2453 §3.10.1).
  sim::Duration triggered_delay = sim::Duration::milliseconds(10);
  /// First periodic update fires this long after start() — harnesses
  /// stagger speakers so periodic updates never synchronize.
  sim::Duration first_update = sim::Duration::milliseconds(5);
  /// Timer wheel quantum (route timers are millisecond-scale).
  sim::Duration wheel_tick = sim::Duration::milliseconds(1);
};

/// Speaker counters.
struct RipStats {
  std::uint64_t updates_sent = 0;
  std::uint64_t updates_received = 0;
  std::uint64_t malformed_dropped = 0;  ///< unparseable / unknown neighbor
  std::uint64_t route_changes = 0;      ///< installs, replaces, metric moves
  std::uint64_t routes_timed_out = 0;
  std::uint64_t routes_gced = 0;
  std::uint64_t triggered_updates = 0;
};

/// Read-only view of one table entry (tests, convergence checks).
struct RipRouteView {
  net::Ipv4Address prefix;
  std::uint8_t len = 0;
  std::uint8_t metric = kRipInfinity;
  device::PortIndex port = 0;
  net::Ipv4Address next_hop;  ///< 0.0.0.0 for connected routes
  bool connected = false;

  friend bool operator==(const RipRouteView&, const RipRouteView&) = default;
};

/// The distance-vector process (see file comment).
class RipSpeaker {
 public:
  /// Announcement egress seam: defaults to LegacyRouter::raw_output.
  /// Tests swap in a capture function to exercise the speaker on a bare
  /// simulator with no links at all.
  using Transport = std::function<void(device::PortIndex, net::Packet)>;

  RipSpeaker(iproute::LegacyRouter& router, RipConfig config = {});

  RipSpeaker(const RipSpeaker&) = delete;
  RipSpeaker& operator=(const RipSpeaker&) = delete;
  ~RipSpeaker();

  /// Declares a directly connected network behind `port` (advertised at
  /// metric 1, never expires). The harness owns the FIB entry for
  /// connected networks; the speaker only advertises them.
  void add_connected(net::Ipv4Address prefix, int len,
                     device::PortIndex port);

  /// Declares an announcement peer. Call before start().
  void add_neighbor(RipNeighbor neighbor);

  /// Replaces the announcement egress (tests only).
  void set_transport(Transport transport) {
    transport_ = std::move(transport);
  }

  /// Hooks the router's local UDP delivery and arms the periodic update
  /// timer (first fire after config.first_update).
  void start();

  /// Looks up one table entry.
  [[nodiscard]] std::optional<RipRouteView> route(net::Ipv4Address prefix,
                                                  int len) const;

  /// Every live table entry, in slot order (stable across queries).
  [[nodiscard]] std::vector<RipRouteView> table() const;

  [[nodiscard]] const RipStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const sim::TimerWheel& wheel() const noexcept {
    return wheel_;
  }
  [[nodiscard]] iproute::LegacyRouter& router() noexcept { return router_; }

 private:
  struct Route {
    net::Ipv4Address prefix;
    std::uint8_t len = 0;
    std::uint8_t metric = kRipInfinity;
    device::PortIndex port = 0;
    net::Ipv4Address next_hop;  ///< advertising neighbor (0 = connected)
    net::MacAddress next_mac;
    bool connected = false;
    bool live = false;  ///< slot in use
    sim::TimerWheel::TimerId timeout_timer = sim::TimerWheel::kInvalidTimerId;
    sim::TimerWheel::TimerId gc_timer = sim::TimerWheel::kInvalidTimerId;
  };

  // Timer trampolines (wheel callbacks are POD function pointers).
  static void on_periodic(void* ctx, std::uint64_t);
  static void on_triggered(void* ctx, std::uint64_t);
  static void on_timeout(void* ctx, std::uint64_t slot);
  static void on_gc(void* ctx, std::uint64_t slot);

  void handle_datagram(device::PortIndex in_port,
                       const net::ParsedPacket& parsed,
                       const net::Packet& packet);
  void process_entry(const RipNeighbor& neighbor, const RipEntry& entry);
  void send_updates();
  void send_update_to(const RipNeighbor& neighbor);
  void arm_timeout(std::uint32_t slot);
  /// Route became unreachable: metric 16, FIB entry pulled, GC armed.
  void invalidate(std::uint32_t slot);
  /// GC fired: slot freed.
  void remove(std::uint32_t slot);
  void schedule_triggered();
  void note_change(const Route& route);
  [[nodiscard]] std::int32_t find(net::Ipv4Address prefix,
                                  std::uint8_t len) const;
  std::uint32_t allocate_slot();

  iproute::LegacyRouter& router_;
  RipConfig config_;
  sim::TimerWheel wheel_;
  Transport transport_;
  std::vector<RipNeighbor> neighbors_;
  std::vector<Route> routes_;
  std::vector<std::uint32_t> free_slots_;
  std::uint32_t seq_ = 0;
  bool started_ = false;
  bool triggered_pending_ = false;
  RipStats stats_;
  obs::Observability* obs_;
};

}  // namespace netco::routing
