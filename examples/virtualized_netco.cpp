// The §VII virtualized NetCo: instead of buying redundant routers, split
// each flow over k vendor-disjoint *paths* with a VLAN tunnel per path and
// recombine at the trusted egress.
//
//   ./build/examples/virtualized_netco
#include <cstdio>

#include "adversary/behaviors.h"
#include "host/ping.h"
#include "topo/virtual_overlay.h"

int main() {
  using namespace netco;

  topo::VirtualOverlayOptions options;
  options.paths = 3;
  options.hops_per_path = 2;
  topo::VirtualOverlayTopology topo(options);

  std::printf("Virtualized NetCo overlay: hA = sA = {3 tunnels} = sB = hB\n");
  std::printf("Paths (existing fabric, zero new routers):\n");
  for (int path = 0; path < options.paths; ++path) {
    std::printf("  tunnel VLAN %d:", options.base_vlan + path);
    for (int hop = 0; hop < options.hops_per_path; ++hop) {
      const auto& sw = topo.path_switch(path, hop);
      std::printf(" %s(%s)", sw.name().c_str(), sw.profile().vendor.c_str());
    }
    std::printf("\n");
  }

  // One interior switch on path 1 is malicious: it corrupts payloads.
  adversary::ModifyBehavior corrupt(adversary::match_all(),
                                    adversary::ModifyBehavior::corrupt_payload());
  topo.path_switch(1, 0).set_interceptor(&corrupt);
  std::printf("\np1-0 is malicious (payload corruption on everything).\n");

  host::PingConfig config;
  config.dst_mac = topo.host_b().mac();
  config.dst_ip = topo.host_b().ip();
  config.count = 30;
  config.interval = sim::Duration::milliseconds(5);
  host::IcmpPinger pinger(topo.host_a(), config);
  pinger.start();
  while (!pinger.finished() && topo.simulator().now().sec() < 3.0) {
    topo.simulator().run_for(sim::Duration::milliseconds(10));
  }
  const auto report = pinger.report();
  topo.simulator().run_for(sim::Duration::milliseconds(100));

  std::printf("\nping hA -> hB over the tunnels: %d/%d replies, avg %.3f ms\n",
              report.received, report.transmitted, report.avg_ms);
  const auto* stats = topo.compare().stats_for("sB");
  std::printf("egress compare: ingested=%llu released=%llu "
              "corrupted-copies-evicted=%llu\n",
              static_cast<unsigned long long>(stats->ingested),
              static_cast<unsigned long long>(stats->released),
              static_cast<unsigned long long>(stats->evicted_timeout));
  std::printf("\nSame guarantee as the physical combiner, no extra router "
              "hardware:\nthe tunnel tag is the replica identity and the "
              "compare strips it before\nvoting bit-by-bit.\n");
  return 0;
}
