// Quickstart: build the paper's reference topology (Fig. 3) with a k=3
// robust combiner, attack one replica, and watch NetCo mask it.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "adversary/behaviors.h"
#include "host/ping.h"
#include "host/udp_app.h"
#include "scenario/scenarios.h"
#include "topo/figure3.h"

int main() {
  using namespace netco;

  // 1. A Fig. 3 network: h1 — [s1 | r0 r1 r2 | s2] — h2, with the compare
  //    process attached to the trusted edges s1/s2 out-of-band.
  auto options = scenario::make_options(scenario::ScenarioKind::kCentral3,
                                        /*seed=*/42);
  topo::Figure3Topology topo(options);
  std::printf("Built Fig. 3 topology: %zu nodes, k=%d combiner\n",
              topo.network().nodes().size(), options.combiner.k);
  for (const auto* replica : topo.combiner().replicas) {
    std::printf("  replica %-10s vendor=%s\n", replica->name().c_str(),
                replica->profile().vendor.c_str());
  }

  // 2. Make one replica malicious: it corrupts every payload it forwards.
  adversary::ModifyBehavior corrupt(adversary::match_all(),
                                    adversary::ModifyBehavior::corrupt_payload());
  topo.combiner().replicas[0]->set_interceptor(&corrupt);
  std::printf("\nInstalled payload-corruption attack on %s\n",
              topo.combiner().replicas[0]->name().c_str());

  // 3. Ping through the combiner: the two honest replicas out-vote it.
  host::PingConfig ping_config;
  ping_config.dst_mac = topo.h2().mac();
  ping_config.dst_ip = topo.h2().ip();
  ping_config.count = 20;
  ping_config.interval = sim::Duration::milliseconds(5);
  host::IcmpPinger pinger(topo.h1(), ping_config);
  pinger.start();
  while (!pinger.finished() && topo.simulator().now().sec() < 3.0) {
    topo.simulator().run_for(sim::Duration::milliseconds(10));
  }
  const auto ping = pinger.report();
  std::printf("\nping h1 -> h2 through the combiner:\n");
  std::printf("  %d/%d replies, rtt avg %.3f ms (min %.3f / max %.3f)\n",
              ping.received, ping.transmitted, ping.avg_ms, ping.min_ms,
              ping.max_ms);
  std::printf("  attacker touched %llu packets — none reached a host "
              "corrupted (bad checksums at h2: %llu)\n",
              static_cast<unsigned long long>(
                  corrupt.attack_stats().packets_attacked),
              static_cast<unsigned long long>(
                  topo.h2().stats().rx_bad_checksum));

  // 4. A short UDP burst for throughput flavour.
  host::UdpSenderConfig udp_config;
  udp_config.dst_mac = topo.h2().mac();
  udp_config.dst_ip = topo.h2().ip();
  udp_config.rate = DataRate::megabits_per_sec(150);
  host::UdpSender sender(topo.h1(), udp_config);
  host::UdpSink sink(topo.h2(), udp_config.dst_port);
  sender.start();
  topo.simulator().run_for(sim::Duration::milliseconds(500));
  sender.stop();
  topo.simulator().run_for(sim::Duration::milliseconds(50));
  const auto report = sink.report();
  std::printf("\nUDP 150 Mb/s for 0.5 s through the combiner:\n");
  std::printf("  goodput %.1f Mb/s, loss %.2f%%, jitter %.3f ms, "
              "duplicates removed: all\n",
              report.goodput_mbps, report.loss_rate * 100, report.jitter_ms);

  // 5. Compare-side accounting: what the trusted element saw.
  std::printf("\ncompare element accounting:\n");
  for (const auto* edge : topo.combiner().edges) {
    const auto* stats = topo.combiner().compare->stats_for(edge->name());
    if (stats == nullptr) continue;
    std::printf(
        "  %s: ingested=%llu released=%llu minority-evicted=%llu "
        "same-port-dups=%llu\n",
        edge->name().c_str(),
        static_cast<unsigned long long>(stats->ingested),
        static_cast<unsigned long long>(stats->released),
        static_cast<unsigned long long>(stats->evicted_timeout),
        static_cast<unsigned long long>(stats->duplicates_same_port));
  }
  std::printf("\nDone. See bench/ for the full paper reproduction.\n");
  return 0;
}
