// The §VI case study as a narrated walk-through: a malicious aggregation
// switch in a k=4 fat-tree exfiltrates firewall-bound traffic and censors
// the replies — then NetCo is deployed around it.
//
//   ./build/examples/datacenter_attack
#include <cstdio>
#include <initializer_list>

#include "scenario/case_study.h"

int main() {
  using namespace netco::scenario;

  std::printf("NetCo case study: routing attack in a k=4 fat-tree\n");
  std::printf("vm1 pings fw1 across the pod; the aggregation switch on the "
              "path is compromised.\n\n");

  for (auto mode : {CaseStudyMode::kBaseline, CaseStudyMode::kAttacked,
                    CaseStudyMode::kProtected}) {
    const auto r = run_case_study(mode, 10);
    std::printf("--- %s ---\n", to_string(mode));
    std::printf("  ICMP cycles:        %d sent, %d completed\n",
                r.requests_sent, r.replies_received_at_vm1);
    std::printf("  requests at fw1:    %llu\n",
                static_cast<unsigned long long>(r.requests_at_fw1));
    std::printf("  copies at core:     %llu\n",
                static_cast<unsigned long long>(r.mirrored_at_core));
    std::printf("  stray frames:       %llu\n",
                static_cast<unsigned long long>(r.stray_at_hosts));
    switch (mode) {
      case CaseStudyMode::kBaseline:
        std::printf("  => ten perfect cycles; both screening methods "
                    "(interface taps, flow counters)\n"
                    "     confirm no packet strays from the benign path.\n\n");
        break;
      case CaseStudyMode::kAttacked:
        std::printf("  => the mirror delivers every request TWICE to fw1 "
                    "via the core (exfiltration\n"
                    "     past the firewall position) and the drop rule "
                    "silences vm1 completely.\n\n");
        break;
      case CaseStudyMode::kProtected:
        std::printf("  compare: ingested=%llu released=%llu "
                    "minority-evicted=%llu\n",
                    static_cast<unsigned long long>(r.compare_ingested),
                    static_cast<unsigned long long>(r.compare_released),
                    static_cast<unsigned long long>(
                        r.compare_evicted_minority));
        std::printf("  => the same malicious datapath now sits inside a k=3 "
                    "combiner: its mirrored\n"
                    "     copies reach the compare but never win a majority; "
                    "its dropped replies\n"
                    "     lose the vote 2:1. All ten cycles complete.\n\n");
        break;
    }
  }
  return 0;
}
