// Self-healing combiner: the health loop (src/health) quarantines a
// byzantine replica and readmits a crashed-then-recovered one — the two
// recovery paths the subsystem exists for.
//
//   Act 1: replica 1 starts corrupting payloads mid-run. Its copies die as
//          attributable singletons, the deviation score saturates, and the
//          QuarantineManager masks it out of the fan-out — goodput recovers
//          while the replica only receives the probation trickle.
//   Act 2: replica 3 crashes and later restarts honest. Quarantined while
//          dark, it matches every probation probe after the restart and is
//          readmitted into the quorum.
//
//   ./build/examples/self_healing
#include <cstdio>

#include "scenario/soak.h"

int main() {
  using namespace netco;

  scenario::SoakOptions options;
  options.k = 5;
  options.policy = core::ReleasePolicy::kMajority;
  options.seed = 42;
  options.packets = 40'000;
  options.rate = DataRate::megabits_per_sec(10);
  options.inject_default_faults = false;
  options.health.enabled = true;

  // The script: corrupt swap at 600 ms (never swapped back — the health
  // loop, not the plan, has to contain it), crash at 1.5 s, restart at
  // 2.2 s (probation must notice the recovery and readmit).
  faultinject::FaultEvent corrupt;
  corrupt.at_ns = sim::Duration::milliseconds(600).ns();
  corrupt.kind = faultinject::FaultKind::kBehaviorSwap;
  corrupt.replica = 1;
  corrupt.behavior = faultinject::SwapBehavior::kCorrupt;
  faultinject::FaultEvent crash;
  crash.at_ns = sim::Duration::milliseconds(1500).ns();
  crash.kind = faultinject::FaultKind::kReplicaCrash;
  crash.replica = 3;
  faultinject::FaultEvent restart;
  restart.at_ns = sim::Duration::milliseconds(2200).ns();
  restart.kind = faultinject::FaultKind::kReplicaRestart;
  restart.replica = 3;
  options.plan.events = {corrupt, crash, restart};
  options.plan.normalize();

  std::printf("=== Self-healing combiner (k=5, health loop on) ===\n\n");
  std::printf("t=600ms  replica 1 turns byzantine (payload corruption)\n");
  std::printf("t=1.5s   replica 3 crashes\n");
  std::printf("t=2.2s   replica 3 restarts, honest\n\n");

  const scenario::SoakResult r = scenario::run_soak(options);

  std::printf("offered %llu datagrams, delivered %llu unique\n",
              static_cast<unsigned long long>(r.datagrams_sent),
              static_cast<unsigned long long>(r.delivered_unique));
  std::printf("health: %llu quarantines, %llu readmits, %llu bans, "
              "%llu probation windows\n",
              static_cast<unsigned long long>(r.health_quarantines),
              static_cast<unsigned long long>(r.health_readmits),
              static_cast<unsigned long long>(r.health_bans),
              static_cast<unsigned long long>(r.health_probe_windows));
  if (r.first_quarantine_ns >= 0) {
    std::printf("first quarantine at t=%.1f ms — %.1f ms after the swap\n",
                static_cast<double>(r.first_quarantine_ns) / 1e6,
                static_cast<double>(r.first_quarantine_ns) / 1e6 - 600.0);
  }
  if (r.first_readmit_ns >= 0) {
    std::printf("first readmission at t=%.1f ms — %.1f ms after the restart\n",
                static_cast<double>(r.first_readmit_ns) / 1e6,
                static_cast<double>(r.first_readmit_ns) / 1e6 - 2200.0);
  }
  std::printf("tail goodput (last quarter of the run): %.1f%%\n",
              r.tail_goodput_ratio * 100.0);
  std::printf("invariants: %llu checks, %llu violations\n\n",
              static_cast<unsigned long long>(r.invariants.checks),
              static_cast<unsigned long long>(r.invariants.violations));
  std::printf(
      "The verdict stream turned the paper's administrator alarms into a\n"
      "closed loop: the corrupting replica was cut out of the fan-out and\n"
      "the quorum shrank around it, while the crashed replica earned its\n"
      "way back in through probation probes.\n");
  return r.ok() ? 0 : 1;
}
