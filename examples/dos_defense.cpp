// §II attack class 4: a compromised replica floods fabricated traffic to
// exhaust the network — and the compare's case-2 logic (§IV) cuts it off.
//
//   ./build/examples/dos_defense
#include <cstdio>

#include "adversary/behaviors.h"
#include "host/ping.h"
#include "scenario/scenarios.h"
#include "topo/figure3.h"

int main() {
  using namespace netco;

  auto options = scenario::make_options(scenario::ScenarioKind::kCentral3, 7);
  topo::Figure3Topology topo(options);

  // The malicious replica fabricates 200k packets/s of unique garbage —
  // ~3.5× the compare's processing capacity.
  adversary::DosFlooder::Config flood_config;
  flood_config.out_port = topo.combiner().replica_edge_port[0][1];
  flood_config.packets_per_sec = 200'000;
  flood_config.packet_bytes = 200;
  flood_config.dst_mac = topo.h2().mac();
  flood_config.src_mac = topo.h1().mac();
  adversary::DosFlooder flooder(*topo.combiner().replicas[0], flood_config);
  flooder.start();
  std::printf("replica %s floods 200k fabricated packets/s toward h2\n\n",
              topo.combiner().replicas[0]->name().c_str());

  // Victim traffic: pings every 25 ms. Watch per-ping outcome around the
  // moment the compare blocks the port.
  host::PingConfig config;
  config.dst_mac = topo.h2().mac();
  config.dst_ip = topo.h2().ip();
  config.count = 12;
  config.interval = sim::Duration::milliseconds(25);
  config.timeout = sim::Duration::milliseconds(400);
  host::IcmpPinger pinger(topo.h1(), config);
  pinger.start();
  while (!pinger.finished() && topo.simulator().now().sec() < 6.0) {
    topo.simulator().run_for(sim::Duration::milliseconds(20));
  }
  flooder.stop();

  const auto report = pinger.report();
  std::printf("victim pings: %d/%d completed (flood emitted %llu packets)\n",
              report.received, report.transmitted,
              static_cast<unsigned long long>(flooder.emitted()));

  for (const auto& alarm : topo.combiner().compare->alarms()) {
    const char* kind =
        alarm.kind == core::CompareAlarm::Kind::kPortBlocked
            ? "PORT BLOCKED (flood)"
            : "replica inactive";
    std::printf("alarm at t=%.1f ms on %s: replica %d — %s\n",
                alarm.at.sec() * 1e3, alarm.edge.c_str(), alarm.replica, kind);
  }
  std::printf(
      "\nThe garbage monitor attributed the fabricated singletons to the\n"
      "flooding replica and advised blocking its port (§IV case 2); the\n"
      "flood dies at the trusted edge and the early losses stop.\n");
  return 0;
}
