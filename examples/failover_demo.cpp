// Surviving the trusted component: the compare process is killed mid-run
// and never comes back. Two deployments handle the same outage:
//
//   Run 1 — warm standby: shadow cores have been judging every quorum all
//           along; the watchdog declares the primary dead, fences it, and
//           promotes the standby. Delivery resumes within milliseconds,
//           with zero duplicate egress (checked per packet against the
//           trace stream) and a small measured gap loss.
//   Run 2 — no standby, fail_open_single: after the rewire latency one
//           designated replica bypasses the dead compare (alarm raised —
//           that path has no majority vote). Availability is preserved;
//           §II protection is consciously given up until repair.
//
//   ./build/examples/failover_demo
#include <cstdio>

#include "scenario/soak.h"

namespace {

netco::scenario::SoakOptions base_options() {
  using namespace netco;
  scenario::SoakOptions options;
  options.k = 3;
  options.policy = core::ReleasePolicy::kMajority;
  options.seed = 7;
  options.packets = 30'000;
  options.rate = DataRate::megabits_per_sec(10);
  options.inject_default_faults = false;
  options.resilience.enabled = true;

  // The script: the trusted compare dies at t=2s, for good.
  faultinject::FaultEvent crash;
  crash.at_ns = sim::Duration::seconds(2).ns();
  crash.kind = faultinject::FaultKind::kCompareCrash;
  options.plan.events = {crash};
  options.plan.normalize();
  return options;
}

void print_timeline(const netco::scenario::SoakResult& r) {
  std::printf("  offered %llu datagrams, delivered %llu unique (%.1f%%)\n",
              static_cast<unsigned long long>(r.datagrams_sent),
              static_cast<unsigned long long>(r.delivered_unique),
              100.0 * static_cast<double>(r.delivered_unique) /
                  static_cast<double>(r.datagrams_sent));
  std::printf("  checkpoints taken: %llu   failovers: %llu   "
              "degraded-mode entries: %llu\n",
              static_cast<unsigned long long>(r.resilience_checkpoints),
              static_cast<unsigned long long>(r.resilience_failovers),
              static_cast<unsigned long long>(r.resilience_degraded_entries));
  if (r.time_to_failover_ns >= 0) {
    std::printf("  time to failover: %.2f ms (crash -> standby live)\n",
                static_cast<double>(r.time_to_failover_ns) / 1e6);
  }
  std::printf("  gap loss: %llu   downtime drops: %llu   "
              "duplicate egress: %llu\n",
              static_cast<unsigned long long>(r.gap_loss),
              static_cast<unsigned long long>(r.downtime_drops),
              static_cast<unsigned long long>(r.duplicate_egress));
  std::printf("  tail goodput (last quarter): %.1f%%   invariants: "
              "%llu checks, %llu violations\n\n",
              r.tail_goodput_ratio * 100.0,
              static_cast<unsigned long long>(r.invariants.checks),
              static_cast<unsigned long long>(r.invariants.violations));
}

}  // namespace

int main() {
  using namespace netco;

  std::printf("=== Trusted-component failover (k=3, compare killed at "
              "t=2s, never restarted) ===\n\n");

  std::printf("Run 1: warm standby shadows the primary\n");
  scenario::SoakOptions standby = base_options();
  standby.resilience.standby = true;
  const scenario::SoakResult a = scenario::run_soak(standby);
  print_timeline(a);

  std::printf("Run 2: no standby — fail_open_single degraded policy\n");
  scenario::SoakOptions open = base_options();
  open.resilience.policy = resilience::DegradedPolicy::kFailOpenSingle;
  const scenario::SoakResult b = scenario::run_soak(open);
  print_timeline(b);

  std::printf(
      "The standby bridged the crash in milliseconds without re-releasing\n"
      "a single packet: promotion fences the primary first, and entries the\n"
      "shadow already judged stay suppressed. Fail-open trades the majority\n"
      "vote for availability instead — one designated replica bypasses the\n"
      "dead compare until an operator repairs it.\n");
  return a.ok() && b.ok() ? 0 : 1;
}
