// The paper-conclusion extension: NetCo around *legacy* (non-OpenFlow)
// IPv4 routers. The k replicas are configuration clones of one logical
// router — same interface MACs/IPs, same FIB — so their L2 rewrites and
// TTL decrements stay bit-identical and the memcmp compare accepts them.
//
//   ./build/examples/legacy_routers
#include <cstdio>

#include "adversary/behaviors.h"
#include "device/network.h"
#include "host/host.h"
#include "host/ping.h"
#include "netco/legacy_combiner.h"

int main() {
  using namespace netco;

  sim::Simulator sim(7);
  device::Network net(sim);
  auto& h1 = net.add_node<host::Host>(
      "h1", net::MacAddress::from_id(1),
      net::Ipv4Address::from_octets(10, 0, 1, 1));
  auto& h2 = net.add_node<host::Host>(
      "h2", net::MacAddress::from_id(2),
      net::Ipv4Address::from_octets(10, 0, 2, 1));

  // One logical router position between two /24 subnets, realized as a
  // k=3 combiner of cloned legacy routers.
  core::LegacyCombinerOptions options;
  options.k = 3;
  auto combiner = core::build_legacy_combiner(
      net, options,
      {core::LegacyAttachment{
           .neighbor = &h1,
           .link = {},
           .local_macs = {h1.mac()},
           .interface = {.mac = net::MacAddress::from_id(100),
                         .ip = net::Ipv4Address::from_octets(10, 0, 1, 254)}},
       core::LegacyAttachment{
           .neighbor = &h2,
           .link = {},
           .local_macs = {h2.mac()},
           .interface = {.mac = net::MacAddress::from_id(101),
                         .ip = net::Ipv4Address::from_octets(10, 0, 2, 254)}}},
      "legacy");
  combiner.add_route(net::Ipv4Address::from_octets(10, 0, 1, 0), 24, 0,
                     h1.mac());
  combiner.add_route(net::Ipv4Address::from_octets(10, 0, 2, 0), 24, 1,
                     h2.mac());

  std::printf("Legacy combiner: %zu cloned IPv4 routers, %zu routes each\n",
              combiner.replicas.size(), combiner.replicas[0]->fib().size());

  // Replica 0 is compromised: it corrupts every payload it routes.
  adversary::ModifyBehavior corrupt(adversary::match_all(),
                                    adversary::ModifyBehavior::corrupt_payload());
  combiner.replicas[0]->set_interceptor(&corrupt);
  std::printf("Compromised %s with payload corruption.\n\n",
              combiner.replicas[0]->name().c_str());

  // Cross-subnet ping: L2 next hop is the logical router's interface MAC.
  host::PingConfig config;
  config.dst_mac = net::MacAddress::from_id(100);
  config.dst_ip = h2.ip();
  config.count = 20;
  config.interval = sim::Duration::milliseconds(5);
  host::IcmpPinger pinger(h1, config);
  pinger.start();
  while (!pinger.finished() && sim.now().sec() < 3.0) {
    sim.run_for(sim::Duration::milliseconds(10));
  }
  const auto report = pinger.report();
  std::printf("ping 10.0.1.1 -> 10.0.2.1 across the routed combiner:\n");
  std::printf("  %d/%d replies, avg rtt %.3f ms\n", report.received,
              report.transmitted, report.avg_ms);
  std::printf("  attacker touched %llu packets; corrupted frames at h2: %llu\n",
              static_cast<unsigned long long>(
                  corrupt.attack_stats().packets_attacked),
              static_cast<unsigned long long>(
                  h2.stats().rx_bad_checksum));
  std::printf(
      "\nThe TTL decrement and MAC rewrites happened identically on every\n"
      "clone, so honest copies still compare bit-for-bit — the combiner\n"
      "works for classic routers exactly as for OpenFlow switches.\n");
  return 0;
}
