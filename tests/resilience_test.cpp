// Unit tests for the trusted-component resilience primitives:
//
//  * the checkpoint text codec round-trips byte-exactly and rejects torn
//    or corrupted input (a half-written checkpoint must never restore);
//  * CompareCore::restore() rebuilds state conservatively — restored
//    unreleased entries are tainted so their later quorums are suppressed
//    (at-most-once egress costs bounded gap loss, never a duplicate);
//  * shadow mode (the warm standby) reaches quorums without emitting, and
//    promotion can never re-emit an entry the shadow already judged.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "net/headers.h"
#include "netco/compare_core.h"
#include "resilience/checkpoint.h"

namespace netco::resilience {
namespace {

net::Packet numbered_packet(std::uint32_t n) {
  std::vector<std::byte> data(64, std::byte{0});
  return net::build_udp(
      net::EthernetHeader{.dst = net::MacAddress::from_id(2),
                          .src = net::MacAddress::from_id(1)},
      std::nullopt,
      net::Ipv4Header{.src = net::Ipv4Address::from_id(1),
                      .dst = net::Ipv4Address::from_id(2),
                      .identification = static_cast<std::uint16_t>(n)},
      net::UdpHeader{.src_port = static_cast<std::uint16_t>(n >> 16),
                     .dst_port = 5001},
      data);
}

sim::TimePoint at_ms(std::int64_t ms) {
  return sim::TimePoint::origin() + sim::Duration::milliseconds(ms);
}

/// A core with deliberately varied state: a released entry, a pending
/// 2-vote entry, a singleton, and a quarantined replica — every branch of
/// the codec gets exercised.
core::CompareCore populated_core() {
  core::CompareCore core(core::CompareConfig{.k = 5});
  const auto released = numbered_packet(1);
  core.ingest(0, released, at_ms(1));
  core.ingest(1, released, at_ms(1));
  core.ingest(2, released, at_ms(2));  // quorum of 5 → released
  const auto pending = numbered_packet(2);
  core.ingest(0, pending, at_ms(3));
  core.ingest(3, pending, at_ms(4));  // 2 of 5: still held
  core.ingest(4, numbered_packet(3), at_ms(5));  // singleton
  core.set_replica_live(2, false, at_ms(6));
  return core;
}

// --- checkpoint codec ------------------------------------------------------

TEST(Checkpoint, RoundTripIsByteExact) {
  core::CompareCore core = populated_core();
  const core::CompareSnapshot snap = core.snapshot(at_ms(7));
  const std::string text = serialize_snapshot(snap);

  const auto parsed = parse_snapshot(text);
  ASSERT_TRUE(parsed.has_value());
  // Serializing the parse must reproduce the original text bit for bit —
  // writer and parser cannot skew without this test failing.
  EXPECT_EQ(serialize_snapshot(*parsed), text);

  EXPECT_EQ(parsed->at_ns, snap.at_ns);
  EXPECT_EQ(parsed->live_mask, snap.live_mask);
  EXPECT_EQ(parsed->live_count, snap.live_count);
  EXPECT_EQ(parsed->stats.released, snap.stats.released);
  EXPECT_EQ(parsed->stats.ingested, snap.stats.ingested);
  ASSERT_EQ(parsed->entries.size(), snap.entries.size());
  for (std::size_t i = 0; i < snap.entries.size(); ++i) {
    EXPECT_EQ(parsed->entries[i].key, snap.entries[i].key);
    EXPECT_EQ(parsed->entries[i].replica_mask, snap.entries[i].replica_mask);
    EXPECT_EQ(parsed->entries[i].released, snap.entries[i].released);
    EXPECT_EQ(parsed->entries[i].payload, snap.entries[i].payload);
    EXPECT_EQ(parsed->entries[i].first_seen_ns,
              snap.entries[i].first_seen_ns);
  }
}

TEST(Checkpoint, EmptyCoreRoundTrips) {
  core::CompareCore core(core::CompareConfig{.k = 3});
  const std::string text = serialize_snapshot(core.snapshot(at_ms(0)));
  const auto parsed = parse_snapshot(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->entries.empty());
  EXPECT_EQ(serialize_snapshot(*parsed), text);
}

TEST(Checkpoint, TornCheckpointRejected) {
  core::CompareCore core = populated_core();
  const std::string text = serialize_snapshot(core.snapshot(at_ms(7)));

  // A checkpoint truncated at any line boundary must refuse to parse:
  // the trailing "end" marker is the commit record.
  std::size_t pos = text.find('\n');
  while (pos != std::string::npos && pos + 1 < text.size()) {
    EXPECT_FALSE(parse_snapshot(text.substr(0, pos + 1)).has_value())
        << "torn at byte " << pos;
    pos = text.find('\n', pos + 1);
  }
  // Mid-line tears too.
  EXPECT_FALSE(parse_snapshot(text.substr(0, text.size() / 2)).has_value());
  EXPECT_FALSE(parse_snapshot("").has_value());
}

TEST(Checkpoint, CorruptedPayloadRejected) {
  core::CompareCore core = populated_core();
  std::string text = serialize_snapshot(core.snapshot(at_ms(7)));

  // Wrong magic.
  std::string bad = text;
  bad[0] = 'X';
  EXPECT_FALSE(parse_snapshot(bad).has_value());

  // Odd-length / non-hex payload on an entry line.
  const std::size_t e = text.find("\ne ");
  ASSERT_NE(e, std::string::npos);
  const std::size_t eol = text.find('\n', e + 1);
  bad = text;
  bad.insert(eol, "f");  // odd hex digit count
  EXPECT_FALSE(parse_snapshot(bad).has_value());
  bad = text;
  bad[eol - 1] = 'z';  // not a hex digit
  EXPECT_FALSE(parse_snapshot(bad).has_value());
}

TEST(Checkpoint, SampledCountersRoundTrip) {
  // The §XII fast-path counters ride the stats line (fields 15-17).
  core::CompareSnapshot snap = populated_core().snapshot(at_ms(7));
  snap.stats.fastpath_ingested = 41;
  snap.stats.fastpath_released = 29;
  snap.stats.sampled_escalated = 3;

  const std::string text = serialize_snapshot(snap);
  const auto parsed = parse_snapshot(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->stats.fastpath_ingested, 41u);
  EXPECT_EQ(parsed->stats.fastpath_released, 29u);
  EXPECT_EQ(parsed->stats.sampled_escalated, 3u);
  EXPECT_EQ(serialize_snapshot(*parsed), text);
}

TEST(Checkpoint, LegacyFourteenFieldStatsLineParses) {
  // A v1 checkpoint written before the fast-path counters existed carries
  // a 14-field stats line; it must restore with the new counters at zero.
  core::CompareSnapshot snap = populated_core().snapshot(at_ms(7));
  snap.stats.fastpath_ingested = 41;
  snap.stats.fastpath_released = 29;
  snap.stats.sampled_escalated = 3;
  std::string text = serialize_snapshot(snap);

  const std::size_t begin = text.find("\nstats ");
  ASSERT_NE(begin, std::string::npos);
  std::size_t end = text.find('\n', begin + 1);
  ASSERT_NE(end, std::string::npos);
  // Drop the last three space-separated fields of the stats line.
  for (int i = 0; i < 3; ++i) {
    end = text.rfind(' ', end - 1);
    ASSERT_NE(end, std::string::npos);
    ASSERT_GT(end, begin);
  }
  const std::string legacy =
      text.substr(0, end) + text.substr(text.find('\n', end));

  const auto parsed = parse_snapshot(legacy);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->stats.ingested, snap.stats.ingested);
  EXPECT_EQ(parsed->stats.released, snap.stats.released);
  EXPECT_EQ(parsed->stats.fastpath_ingested, 0u);
  EXPECT_EQ(parsed->stats.fastpath_released, 0u);
  EXPECT_EQ(parsed->stats.sampled_escalated, 0u);
}

TEST(Checkpoint, TornStatsLineRejectedWhole) {
  // A stats line torn mid-record — 15 or 16 fields, or trailing garbage —
  // is neither the legacy 14-field nor the full 17-field shape: the whole
  // checkpoint must refuse to parse, never restore half a counter block.
  core::CompareSnapshot snap = populated_core().snapshot(at_ms(7));
  snap.stats.fastpath_ingested = 41;
  snap.stats.fastpath_released = 29;
  snap.stats.sampled_escalated = 3;
  const std::string text = serialize_snapshot(snap);

  const std::size_t begin = text.find("\nstats ");
  ASSERT_NE(begin, std::string::npos);
  const std::size_t eol = text.find('\n', begin + 1);
  ASSERT_NE(eol, std::string::npos);

  std::size_t cut = eol;
  for (int dropped = 1; dropped <= 2; ++dropped) {
    cut = text.rfind(' ', cut - 1);
    ASSERT_NE(cut, std::string::npos);
    const std::string torn = text.substr(0, cut) + text.substr(eol);
    EXPECT_FALSE(parse_snapshot(torn).has_value())
        << "stats line with " << (17 - dropped) << " fields parsed";
  }

  std::string garbled = text;
  garbled[eol - 1] = 'x';  // last counter becomes non-numeric
  EXPECT_FALSE(parse_snapshot(garbled).has_value());
}

TEST(Checkpoint, MutationFuzzNeverCrashesAndStaysConsistent) {
  // Random byte mutations, truncations and line splices over a valid
  // checkpoint: the parser must never crash, and whenever it does accept
  // an input, re-serializing the result must itself parse (the writer and
  // parser stay closed under each other — the property the per-shard
  // snapshot merge leans on).
  core::CompareSnapshot snap = populated_core().snapshot(at_ms(7));
  snap.stats.fastpath_ingested = 41;
  snap.stats.sampled_escalated = 3;
  const std::string text = serialize_snapshot(snap);
  Rng rng(0xC0DEC);

  for (int i = 0; i < 2000; ++i) {
    std::string mutated = text;
    switch (rng.uniform_u64(3)) {
      case 0: {  // flip 1-4 bytes to arbitrary values
        const int flips = 1 + static_cast<int>(rng.uniform_u64(4));
        for (int f = 0; f < flips; ++f) {
          mutated[rng.uniform_u64(mutated.size())] =
              static_cast<char>(rng.uniform_u64(256));
        }
        break;
      }
      case 1:  // torn write: truncate at an arbitrary byte
        mutated.resize(rng.uniform_u64(mutated.size()));
        break;
      default: {  // splice: duplicate one line over another
        const std::size_t a = rng.uniform_u64(mutated.size());
        const std::size_t from = mutated.rfind('\n', a);
        const std::size_t to = mutated.find('\n', a);
        if (to != std::string::npos) {
          const std::size_t begin = from == std::string::npos ? 0 : from + 1;
          mutated.insert(begin, mutated.substr(begin, to - begin + 1));
        }
        break;
      }
    }
    const auto parsed = parse_snapshot(mutated);
    if (parsed.has_value()) {
      EXPECT_TRUE(parse_snapshot(serialize_snapshot(*parsed)).has_value())
          << "accepted input re-serialized into a rejected checkpoint";
    }
  }
}

// --- restore semantics -----------------------------------------------------

TEST(Restore, RebuildsStateConservatively) {
  core::CompareCore primary = populated_core();
  const core::CompareSnapshot snap = primary.snapshot(at_ms(7));

  core::CompareCore restarted(primary.config());
  restarted.restore(snap, at_ms(10));

  // The books balance: the audit recomputes quota counters and the age
  // list from scratch and must agree with the restored bookkeeping.
  const core::CompareAudit audit = restarted.audit();
  EXPECT_TRUE(audit.age_cache_consistent);
  EXPECT_TRUE(audit.age_ordered);
  EXPECT_EQ(audit.cache_entries, snap.entries.size());
  EXPECT_EQ(audit.quota_counts, audit.live_singletons);

  // Counters and the live set carry over: replica 2 was quarantined at
  // checkpoint time and must still be out after the warm restart.
  EXPECT_EQ(restarted.stats().released, primary.stats().released);
  EXPECT_FALSE(restarted.replica_live(2));
  EXPECT_EQ(restarted.live_count(), primary.live_count());
}

TEST(Restore, RecoveredEntryQuorumIsSuppressed) {
  // A 1-vote entry at checkpoint time may or may not have been released
  // between the checkpoint and the crash. After restore, its quorum must
  // complete *silently*: no emission, counted as suppressed_recovered.
  core::CompareCore primary(core::CompareConfig{.k = 3});
  const auto p = numbered_packet(9);
  EXPECT_FALSE(primary.ingest(0, p, at_ms(0)).has_value());
  const core::CompareSnapshot snap = primary.snapshot(at_ms(1));

  core::CompareCore restarted(primary.config());
  restarted.restore(snap, at_ms(2));
  // Second vote completes the quorum — but the entry is tainted.
  EXPECT_FALSE(restarted.ingest(1, p, at_ms(3)).has_value());
  EXPECT_EQ(restarted.stats().suppressed_recovered, 1u);
  EXPECT_EQ(restarted.stats().released, 0u);
  // Third copy is late-after-release bookkeeping, not a second chance.
  EXPECT_FALSE(restarted.ingest(2, p, at_ms(4)).has_value());
  EXPECT_EQ(restarted.stats().late_after_release, 1u);
  EXPECT_EQ(restarted.stats().suppressed_recovered, 1u);
}

TEST(Restore, ReleasedEntryNeverReleasesAgain) {
  // An entry already released at checkpoint time stays released: the late
  // third copy after restore is ignored, not re-emitted.
  core::CompareCore primary(core::CompareConfig{.k = 3});
  const auto p = numbered_packet(11);
  primary.ingest(0, p, at_ms(0));
  EXPECT_TRUE(primary.ingest(1, p, at_ms(0)).has_value());
  const core::CompareSnapshot snap = primary.snapshot(at_ms(1));

  core::CompareCore restarted(primary.config());
  restarted.restore(snap, at_ms(2));
  EXPECT_FALSE(restarted.ingest(2, p, at_ms(3)).has_value());
  EXPECT_EQ(restarted.stats().late_after_release, 1u);
  EXPECT_EQ(restarted.stats().suppressed_recovered, 0u);
  EXPECT_EQ(restarted.stats().released, 1u);  // carried over, not repeated
}

TEST(Restore, FreshTrafficAfterRestoreReleasesNormally) {
  // The taint applies to restored entries only: packets first seen after
  // the restart release exactly as on a cold core.
  core::CompareCore primary(core::CompareConfig{.k = 3});
  primary.ingest(0, numbered_packet(1), at_ms(0));
  const core::CompareSnapshot snap = primary.snapshot(at_ms(1));

  core::CompareCore restarted(primary.config());
  restarted.restore(snap, at_ms(2));
  const auto fresh = numbered_packet(2);
  EXPECT_FALSE(restarted.ingest(0, fresh, at_ms(3)).has_value());
  EXPECT_TRUE(restarted.ingest(1, fresh, at_ms(3)).has_value());
  EXPECT_EQ(restarted.stats().released, 1u);
}

TEST(Restore, DiscardsPreRestoreState) {
  // restore() is a full replacement, not a merge: entries the core held
  // before the restore are gone afterwards, so a packet pending pre-crash
  // but absent from the checkpoint needs a full fresh quorum.
  core::CompareCore core(core::CompareConfig{.k = 3});
  const core::CompareSnapshot empty = core.snapshot(at_ms(0));

  const auto p = numbered_packet(21);
  core.ingest(0, p, at_ms(1));
  core.ingest(1, p, at_ms(1));  // released pre-restore
  core.restore(empty, at_ms(2));

  EXPECT_EQ(core.audit().cache_entries, 0u);
  EXPECT_EQ(core.stats().released, 0u);  // snapshot's counters rule
  // Rebuilding the quorum from live traffic releases again: the entry is
  // new (not recovered), so this is the normal path, not a duplicate of a
  // tracked release.
  EXPECT_FALSE(core.ingest(0, p, at_ms(3)).has_value());
  EXPECT_TRUE(core.ingest(1, p, at_ms(3)).has_value());
}

// --- shadow (standby) mode -------------------------------------------------

TEST(Shadow, WithholdsEveryRelease) {
  core::CompareCore core(core::CompareConfig{.k = 3});
  core.set_shadow(true);
  const auto p = numbered_packet(31);
  EXPECT_FALSE(core.ingest(0, p, at_ms(0)).has_value());
  EXPECT_FALSE(core.ingest(1, p, at_ms(0)).has_value());  // quorum, withheld
  EXPECT_EQ(core.stats().shadow_releases, 1u);
  EXPECT_EQ(core.stats().released, 0u);
  EXPECT_FALSE(core.ingest(2, p, at_ms(1)).has_value());
  EXPECT_EQ(core.stats().late_after_release, 1u);
}

TEST(Shadow, PromotionDoesNotReemitShadowJudgedEntries) {
  core::CompareCore core(core::CompareConfig{.k = 3});
  core.set_shadow(true);
  const auto old_p = numbered_packet(41);
  core.ingest(0, old_p, at_ms(0));
  core.ingest(1, old_p, at_ms(0));  // shadow quorum: primary owned this one

  core.set_shadow(false);  // promotion
  // The straggler third copy of the pre-promotion packet must not leak
  // out — the primary (or nobody) released it; re-emitting would be the
  // split-brain duplicate.
  EXPECT_FALSE(core.ingest(2, old_p, at_ms(1)).has_value());
  EXPECT_EQ(core.stats().released, 0u);

  // Post-promotion packets release normally.
  const auto new_p = numbered_packet(42);
  EXPECT_FALSE(core.ingest(0, new_p, at_ms(2)).has_value());
  EXPECT_TRUE(core.ingest(1, new_p, at_ms(2)).has_value());
  EXPECT_EQ(core.stats().released, 1u);
}

TEST(Shadow, FirstCopyPolicyAlsoWithheld) {
  // The immediate-release path (kFirstCopy / new-entry release) goes
  // through the same suppression gate.
  core::CompareCore core(core::CompareConfig{
      .k = 2, .policy = core::ReleasePolicy::kFirstCopy});
  core.set_shadow(true);
  EXPECT_FALSE(core.ingest(0, numbered_packet(51), at_ms(0)).has_value());
  EXPECT_EQ(core.stats().shadow_releases, 1u);
  EXPECT_EQ(core.stats().released, 0u);
}

}  // namespace
}  // namespace netco::resilience
