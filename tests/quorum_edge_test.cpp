// Edge cases of the quorum arithmetic and the ingest guard rails:
// even k (a strict majority, not a tie), the k=1 degenerate pass-through,
// and graceful rejection of out-of-range replica indices (a buggy or
// malicious edge must not be able to corrupt another replica's vote bit).
#include <gtest/gtest.h>

#include <vector>

#include "net/headers.h"
#include "netco/compare_core.h"

namespace netco::core {
namespace {

net::Packet numbered_packet(std::uint32_t n) {
  std::vector<std::byte> data(64, std::byte{0});
  return net::build_udp(
      net::EthernetHeader{.dst = net::MacAddress::from_id(2),
                         .src = net::MacAddress::from_id(1)},
      std::nullopt,
      net::Ipv4Header{.src = net::Ipv4Address::from_id(1),
                      .dst = net::Ipv4Address::from_id(2),
                      .identification = static_cast<std::uint16_t>(n)},
      net::UdpHeader{.src_port = static_cast<std::uint16_t>(n >> 16),
                     .dst_port = 5001},
      data);
}

sim::TimePoint at_ms(std::int64_t ms) {
  return sim::TimePoint::origin() + sim::Duration::milliseconds(ms);
}

TEST(QuorumEdge, EvenKRequiresStrictMajority) {
  CompareConfig c;
  c.k = 4;
  EXPECT_EQ(c.quorum(), 3);  // a 2-2 split must not release
  c.k = 6;
  EXPECT_EQ(c.quorum(), 4);
  c.k = 1;
  EXPECT_EQ(c.quorum(), 1);
}

TEST(QuorumEdge, EvenKTieDoesNotRelease) {
  CompareCore core(CompareConfig{.k = 4});
  const auto p = numbered_packet(1);
  EXPECT_FALSE(core.ingest(0, p, at_ms(0)).has_value());
  EXPECT_FALSE(core.ingest(1, p, at_ms(0)).has_value());  // 2 of 4: tie
  EXPECT_TRUE(core.ingest(2, p, at_ms(0)).has_value());   // 3 of 4: majority
  EXPECT_EQ(core.stats().released, 1u);
}

TEST(QuorumEdge, SingleReplicaIsImmediatePassThrough) {
  // k=1 degenerates to an ordinary unreplicated path: quorum 1, so every
  // first copy releases immediately with zero verdict latency.
  CompareCore core(CompareConfig{.k = 1});
  for (std::uint32_t n = 0; n < 4; ++n) {
    const auto released = core.ingest(0, numbered_packet(n), at_ms(0));
    ASSERT_TRUE(released.has_value());
    EXPECT_EQ(released->content_hash(), numbered_packet(n).content_hash());
  }
  EXPECT_EQ(core.stats().released, 4u);
  core.sweep(at_ms(100));
  EXPECT_EQ(core.stats().evicted_timeout, 0u);  // nothing left pending
}

TEST(QuorumEdge, OutOfRangeReplicaRejectedWithoutCorruptingVote) {
  CompareCore core(CompareConfig{.k = 3});
  const auto p = numbered_packet(5);

  // Both below-range and at/above-k indices are rejected outright.
  EXPECT_FALSE(core.ingest(-1, p, at_ms(0)).has_value());
  EXPECT_FALSE(core.ingest(3, p, at_ms(0)).has_value());
  EXPECT_FALSE(core.ingest(64, p, at_ms(0)).has_value());
  EXPECT_EQ(core.stats().rejected_replica, 3u);
  EXPECT_EQ(core.stats().ingested, 0u);  // rejected ≠ ingested

  // The vote state is untouched: the packet still needs a genuine quorum
  // from in-range replicas, no more and no less.
  EXPECT_FALSE(core.ingest(0, p, at_ms(1)).has_value());
  EXPECT_TRUE(core.ingest(2, p, at_ms(1)).has_value());
  EXPECT_EQ(core.stats().released, 1u);
  EXPECT_EQ(core.stats().ingested, 2u);
}

TEST(QuorumEdge, RejectionDoesNotDisturbExistingEntry) {
  // An out-of-range ingest arriving *mid-vote* must not advance, reset, or
  // release the pending entry.
  CompareCore core(CompareConfig{.k = 3});
  const auto p = numbered_packet(6);
  EXPECT_FALSE(core.ingest(0, p, at_ms(0)).has_value());
  EXPECT_FALSE(core.ingest(7, p, at_ms(0)).has_value());  // rejected
  EXPECT_FALSE(core.ingest(0, p, at_ms(0)).has_value());  // duplicate, no vote
  EXPECT_TRUE(core.ingest(1, p, at_ms(0)).has_value());   // real second vote
  EXPECT_EQ(core.stats().rejected_replica, 1u);
  EXPECT_EQ(core.stats().duplicates_same_port, 1u);
}

// --- quorum-size changes with entries in flight ---------------------------
//
// The health loop (and the resilience manager's degraded modes) resize the
// live set *while entries are mid-vote*. The quorum decision is evaluated
// against the live set at each arrival, so an in-flight entry must follow
// the new arithmetic — votes already banked from now-quarantined replicas
// stop counting, and a shrunken quorum can be completed by fewer copies.

TEST(QuorumEdge, InFlightEntryReleasesAtShrunkenQuorum) {
  // k=5 needs 3 votes; two are banked. Quarantining two non-contributors
  // shrinks the live set to 3 (quorum 2), so the next live copy releases
  // with what would have been one vote short under the old arithmetic.
  CompareCore core(CompareConfig{.k = 5});
  const auto p = numbered_packet(70);
  EXPECT_FALSE(core.ingest(0, p, at_ms(0)).has_value());
  EXPECT_FALSE(core.ingest(1, p, at_ms(0)).has_value());
  core.set_replica_live(3, false, at_ms(1));
  core.set_replica_live(4, false, at_ms(1));
  EXPECT_EQ(core.live_quorum(), 2);
  EXPECT_TRUE(core.ingest(2, p, at_ms(2)).has_value());
  EXPECT_EQ(core.stats().released, 1u);
}

TEST(QuorumEdge, QuarantinedContributorsBankedVoteStopsCounting) {
  // Replica 1 votes, then gets quarantined: its banked vote must not help
  // the entry across the line. With 4 live replicas the quorum is 3, and
  // only live contributions count — so {0, 2} is short and {0, 2, 3}
  // releases.
  CompareCore core(CompareConfig{.k = 5});
  const auto p = numbered_packet(71);
  EXPECT_FALSE(core.ingest(0, p, at_ms(0)).has_value());
  EXPECT_FALSE(core.ingest(1, p, at_ms(0)).has_value());
  core.set_replica_live(1, false, at_ms(1));
  EXPECT_EQ(core.live_quorum(), 3);
  EXPECT_FALSE(core.ingest(2, p, at_ms(2)).has_value());  // {0,2}: 2 < 3
  EXPECT_TRUE(core.ingest(3, p, at_ms(2)).has_value());   // {0,2,3}: 3
  EXPECT_EQ(core.stats().released, 1u);
}

TEST(QuorumEdge, ShrinkToTwoFlipsInFlightEntryToFirstCopyMode) {
  // A live set of 2 falls back to detection mode (a majority of 2 would
  // stall on any single slow replica). An entry pending from before the
  // shrink releases on its next live copy.
  CompareCore core(CompareConfig{.k = 3});
  const auto p = numbered_packet(72);
  EXPECT_FALSE(core.ingest(0, p, at_ms(0)).has_value());
  core.set_replica_live(2, false, at_ms(1));
  EXPECT_TRUE(core.degraded_first_copy());
  EXPECT_TRUE(core.ingest(1, p, at_ms(2)).has_value());
  EXPECT_EQ(core.stats().released, 1u);
}

TEST(QuorumEdge, ReadmittedReplicaVotesOnInFlightEntry) {
  // The reverse transition: a replica readmitted mid-entry contributes a
  // full vote to entries still pending, completing the restored quorum.
  CompareCore core(CompareConfig{.k = 5});
  core.set_replica_live(4, false, at_ms(0));
  const auto p = numbered_packet(73);
  EXPECT_FALSE(core.ingest(0, p, at_ms(1)).has_value());
  EXPECT_FALSE(core.ingest(1, p, at_ms(1)).has_value());
  core.set_replica_live(4, true, at_ms(2));
  EXPECT_EQ(core.live_quorum(), 3);
  EXPECT_TRUE(core.ingest(4, p, at_ms(3)).has_value());  // {0,1,4}: quorum
  EXPECT_EQ(core.stats().released, 1u);
}

}  // namespace
}  // namespace netco::core
