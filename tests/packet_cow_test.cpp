// COW aliasing + hash memoization semantics for net::Packet.
//
// The zero-copy fabric rests on two invariants: (1) duplicating a packet
// then mutating one copy never affects its siblings (value semantics are
// preserved exactly), and (2) the memoized content/prefix hashes are
// invalidated by every mutator, so a memoized value always equals the
// from-scratch FNV-1a of the current bytes.
#include <gtest/gtest.h>

#include <vector>

#include "common/hash.h"
#include "net/address.h"
#include "net/packet.h"

namespace netco::net {
namespace {

Packet numbered_packet(std::size_t n = 64) {
  std::vector<std::byte> bytes(n);
  for (std::size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<std::byte>(i * 7 + 3);
  }
  return Packet(std::move(bytes));
}

/// From-scratch reference hash of the packet's current bytes.
std::uint64_t reference_hash(const Packet& p) { return fnv1a(p.bytes()); }

TEST(PacketCow, CopyAliasesUntilMutation) {
  Packet a = numbered_packet();
  Packet b = a;
  EXPECT_TRUE(a.shares_payload_with(b));
  EXPECT_EQ(a, b);

  b.set_u8(0, 0xFF);
  EXPECT_FALSE(a.shares_payload_with(b));
  EXPECT_NE(a, b);
  EXPECT_EQ(a.u8(0), numbered_packet().u8(0)) << "sibling was mutated";
}

TEST(PacketCow, MutatingOneCopyNeverAffectsSiblings) {
  const Packet original = numbered_packet();
  // One mutation of each kind, applied to a fresh alias of `original`.
  const std::vector<void (*)(Packet&)> mutators = {
      [](Packet& p) { p.bytes_mut()[1] = std::byte{0xEE}; },
      [](Packet& p) { p.set_u8(2, 0xFF); },
      [](Packet& p) { p.set_u16be(4, 0xBEEF); },
      [](Packet& p) { p.set_u32be(8, 0xDEADBEEF); },
      [](Packet& p) { p.set_mac_at(0, MacAddress::from_id(0xABCDEF)); },
      [](Packet& p) { p.resize(128); },
      [](Packet& p) { p.insert_zeros(10, 4); },
      [](Packet& p) { p.erase(10, 4); },
      [](Packet& p) {
        const std::byte tail[] = {std::byte{1}, std::byte{2}};
        p.append(tail);
      },
  };
  for (std::size_t i = 0; i < mutators.size(); ++i) {
    Packet copy = original;
    ASSERT_TRUE(copy.shares_payload_with(original));
    mutators[i](copy);
    EXPECT_FALSE(copy.shares_payload_with(original)) << "mutator " << i;
    EXPECT_EQ(original, numbered_packet())
        << "mutator " << i << " leaked into the shared buffer";
    EXPECT_NE(copy, original) << "mutator " << i << " had no effect";
  }
}

TEST(PacketCow, EveryMutatorInvalidatesTheMemoizedHash) {
  const std::vector<void (*)(Packet&)> mutators = {
      [](Packet& p) { p.bytes_mut()[1] = std::byte{0xEE}; },
      [](Packet& p) { p.set_u8(2, 0xFF); },
      [](Packet& p) { p.set_u16be(4, 0xBEEF); },
      [](Packet& p) { p.set_u32be(8, 0xDEADBEEF); },
      [](Packet& p) { p.set_mac_at(0, MacAddress::from_id(0xABCDEF)); },
      [](Packet& p) { p.resize(128); },
      [](Packet& p) { p.insert_zeros(10, 4); },
      [](Packet& p) { p.erase(10, 4); },
      [](Packet& p) {
        const std::byte tail[] = {std::byte{1}, std::byte{2}};
        p.append(tail);
      },
  };
  for (std::size_t i = 0; i < mutators.size(); ++i) {
    // Unique buffer: mutation happens in place, memo must still die.
    Packet p = numbered_packet();
    const std::uint64_t before = p.content_hash();  // memoize
    (void)p.prefix_hash(16);                        // memoize prefix too
    mutators[i](p);
    EXPECT_NE(p.content_hash(), before) << "mutator " << i;
    EXPECT_EQ(p.content_hash(), reference_hash(p)) << "mutator " << i;
    EXPECT_EQ(p.prefix_hash(16), fnv1a(p.bytes().first(16)))
        << "mutator " << i;

    // Shared buffer: mutation detaches; both sides must hash correctly.
    Packet shared_a = numbered_packet();
    Packet shared_b = shared_a;
    (void)shared_a.content_hash();
    mutators[i](shared_b);
    EXPECT_EQ(shared_a.content_hash(), reference_hash(shared_a))
        << "mutator " << i;
    EXPECT_EQ(shared_b.content_hash(), reference_hash(shared_b))
        << "mutator " << i;
    EXPECT_NE(shared_a.content_hash(), shared_b.content_hash())
        << "mutator " << i;
  }
}

TEST(PacketCow, MemoizedHashEqualsFreshFnv) {
  Packet p = numbered_packet(200);
  const std::uint64_t first = p.content_hash();
  EXPECT_EQ(first, reference_hash(p));
  EXPECT_EQ(p.content_hash(), first) << "memoized call diverged";

  // Copies share the memo; the value is still the bytes' FNV-1a.
  const Packet copy = p;
  EXPECT_EQ(copy.content_hash(), first);

  // Prefix hashes: memoized slot follows the requested length.
  EXPECT_EQ(p.prefix_hash(58), fnv1a(p.bytes().first(58)));
  EXPECT_EQ(p.prefix_hash(58), fnv1a(p.bytes().first(58)));
  EXPECT_EQ(p.prefix_hash(14), fnv1a(p.bytes().first(14)));
  // A prefix covering the whole packet equals the content hash.
  EXPECT_EQ(p.prefix_hash(200), first);
  EXPECT_EQ(p.prefix_hash(500), first);
}

TEST(PacketCow, EmptyPacketHashAndEquality) {
  const Packet a;
  const Packet b;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.content_hash(), kFnvOffset);
  EXPECT_EQ(a.content_hash(), fnv1a({}));
  EXPECT_EQ(a.prefix_hash(10), kFnvOffset);
  EXPECT_EQ(a, Packet::zeroed(0));
}

TEST(PacketCow, EqualityAcrossDetachedEqualBuffers) {
  Packet a = numbered_packet();
  Packet b = a;
  b.set_u8(0, 0xFF);
  b.set_u8(0, a.u8(0));  // back to the original value, distinct buffer
  EXPECT_FALSE(a.shares_payload_with(b));
  EXPECT_EQ(a, b);
  // Memoized-hash fast reject must not produce false negatives.
  (void)a.content_hash();
  (void)b.content_hash();
  EXPECT_EQ(a, b);
}

TEST(PacketCow, BytesMutDetachesFromSiblings) {
  Packet a = numbered_packet();
  Packet b = a;
  (void)a.content_hash();
  auto view = b.bytes_mut();
  view[0] = std::byte{0x99};
  EXPECT_FALSE(a.shares_payload_with(b));
  EXPECT_EQ(a, numbered_packet());
  EXPECT_EQ(b.content_hash(), reference_hash(b));
  EXPECT_NE(b.content_hash(), a.content_hash());
}

TEST(PacketCow, MoveTransfersTheBufferWithoutCopy) {
  Packet a = numbered_packet();
  const Packet alias = a;
  Packet moved = std::move(a);
  EXPECT_TRUE(moved.shares_payload_with(alias));
  EXPECT_EQ(moved, numbered_packet());
}

}  // namespace
}  // namespace netco::net
