// Property test: WeightedVoteCache vs a naive map model.
//
// The cache buys its O(1) fast path with intrusive bookkeeping (SoA
// arena, bucket chains, age list, per-replica quota counters) — exactly
// the machinery that rots silently. A long randomized op stream drives
// the real cache and a deliberately dumb reference model in lockstep and
// demands equivalence after every step:
//
//  * tally/mask/released equality for every live key;
//  * eviction order: capacity scans the kVictimScanLimit oldest entries
//    and evicts the lowest-tally *unreleased* one (tie: oldest),
//    falling back to released entries and — only when nothing else is
//    left — escalated memos; quota overflow evicts that replica's
//    oldest singleton (memos neither charge nor trigger the quota);
//  * quota-slot conservation: counters match a recount at all times, so
//    no squeeze/evict/release interleaving can strand a slot.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <random>
#include <vector>

#include "netco/vote_cache.h"

namespace netco::core {
namespace {

struct ModelEntry {
  std::uint64_t key = 0;
  std::uint64_t packet_id = 0;
  std::uint64_t mask = 0;
  double tally = 0.0;
  std::int64_t first_seen_ns = 0;
  int first_replica = -1;
  bool released = false;
  bool escalated = false;
  bool quota_held = false;
};

/// The reference: a flat vector in insertion (age) order with the same
/// eviction rules spelled out the slow, obvious way.
class ModelCache {
 public:
  ModelCache(std::size_t capacity, std::size_t quota, int k)
      : capacity_(std::max<std::size_t>(1, capacity)),
        arena_(capacity_),
        quota_(quota),
        k_(k) {}

  [[nodiscard]] const ModelEntry* find(std::uint64_t key) const {
    for (const ModelEntry& e : entries_) {
      if (e.key == key) return &e;
    }
    return nullptr;
  }

  [[nodiscard]] std::size_t quota_count(int replica) const {
    std::size_t n = 0;
    for (const ModelEntry& e : entries_) {
      if (e.quota_held && e.first_replica == replica) ++n;
    }
    return n;
  }

  void insert(std::uint64_t key, std::uint64_t packet_id, std::int64_t now,
              int first_replica, bool escalated,
              std::vector<ModelEntry>& evicted) {
    // Escalated memos neither charge nor trigger the quota.
    if (!escalated && first_replica >= 0 && first_replica < k_ &&
        quota_ > 0 && quota_count(first_replica) >= quota_) {
      evict_quota(first_replica, evicted);
    }
    while (entries_.size() >= capacity_) evict_capacity(evicted);
    ModelEntry e;
    e.key = key;
    e.packet_id = packet_id;
    e.first_seen_ns = now;
    e.first_replica = first_replica;
    e.escalated = escalated;
    e.quota_held = !escalated && first_replica >= 0 && first_replica < k_;
    entries_.push_back(e);
  }

  bool add_vote(std::uint64_t key, int replica, double weight) {
    ModelEntry* e = mutable_find(key);
    const std::uint64_t bit = 1ULL << static_cast<unsigned>(replica);
    if ((e->mask & bit) != 0) return false;
    e->mask |= bit;
    e->tally += weight;
    if (std::popcount(e->mask) == 2) e->quota_held = false;
    return true;
  }

  void set_released(std::uint64_t key) {
    ModelEntry* e = mutable_find(key);
    e->released = true;
    e->quota_held = false;
  }

  void erase(std::uint64_t key) {
    entries_.erase(std::find_if(
        entries_.begin(), entries_.end(),
        [key](const ModelEntry& e) { return e.key == key; }));
  }

  void sweep(std::int64_t horizon, std::vector<ModelEntry>& dead) {
    while (!entries_.empty() && entries_.front().first_seen_ns < horizon) {
      dead.push_back(entries_.front());
      entries_.erase(entries_.begin());
    }
  }

  void set_capacity(std::size_t capacity, std::vector<ModelEntry>& evicted) {
    capacity_ = std::clamp<std::size_t>(capacity, 1, arena_);
    while (entries_.size() > capacity_) evict_capacity(evicted);
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<ModelEntry>& entries() const {
    return entries_;
  }

 private:
  ModelEntry* mutable_find(std::uint64_t key) {
    for (ModelEntry& e : entries_) {
      if (e.key == key) return &e;
    }
    return nullptr;
  }

  void evict_capacity(std::vector<ModelEntry>& evicted) {
    // Bounded sample of the oldest entries; lowest tally wins and a tie
    // keeps the earliest (oldest) candidate. Unreleased entries go before
    // released ones; escalated memos only when nothing else is left.
    const std::size_t npos = entries_.size();
    const std::size_t scan =
        std::min(entries_.size(), WeightedVoteCache::kVictimScanLimit);
    std::size_t best_open = npos, best_released = npos;
    for (std::size_t i = 0; i < scan; ++i) {
      const ModelEntry& e = entries_[i];
      if (e.escalated) continue;
      if (e.released) {
        if (best_released == npos ||
            e.tally < entries_[best_released].tally) {
          best_released = i;
        }
      } else if (best_open == npos || e.tally < entries_[best_open].tally) {
        best_open = i;
      }
    }
    std::size_t victim = best_open != npos ? best_open : best_released;
    if (victim == npos) {
      for (std::size_t i = scan; i < entries_.size(); ++i) {
        if (!entries_[i].escalated) {
          victim = i;
          break;
        }
      }
    }
    if (victim == npos) victim = 0;  // nothing but memos: oldest goes
    evicted.push_back(entries_[victim]);
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
  }

  void evict_quota(int replica, std::vector<ModelEntry>& evicted) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].quota_held && entries_[i].first_replica == replica) {
        evicted.push_back(entries_[i]);
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  std::size_t capacity_;
  const std::size_t arena_;  ///< construction-time bound, like the real one
  std::size_t quota_;
  int k_;
  std::vector<ModelEntry> entries_;
};

void expect_equivalent(const WeightedVoteCache& cache,
                       const ModelCache& model, std::uint64_t step) {
  ASSERT_EQ(cache.size(), model.size()) << "step " << step;
  for (const ModelEntry& e : model.entries()) {
    const WeightedVoteCache::Slot slot = cache.find(e.key);
    ASSERT_NE(slot, WeightedVoteCache::kNil)
        << "step " << step << ": key " << e.key << " missing";
    EXPECT_EQ(cache.mask(slot), e.mask) << "step " << step;
    EXPECT_DOUBLE_EQ(cache.tally(slot), e.tally) << "step " << step;
    EXPECT_EQ(cache.released(slot), e.released) << "step " << step;
    EXPECT_EQ(cache.escalated(slot), e.escalated) << "step " << step;
    EXPECT_EQ(cache.first_seen_ns(slot), e.first_seen_ns) << "step " << step;
    EXPECT_EQ(cache.first_replica(slot), e.first_replica) << "step " << step;
  }

  const VoteCacheAudit audit = cache.audit();
  ASSERT_TRUE(audit.consistent)
      << "step " << step << ": entries=" << audit.entries
      << " age=" << audit.age_entries << " chain=" << audit.chain_entries
      << " free=" << audit.free_slots << " arena=" << audit.arena;
  EXPECT_TRUE(audit.age_ordered) << "step " << step;
  EXPECT_LE(audit.entries, audit.capacity) << "step " << step;
  ASSERT_EQ(audit.quota_counts.size(), audit.live_quota_held.size());
  for (std::size_t r = 0; r < audit.quota_counts.size(); ++r) {
    EXPECT_EQ(audit.quota_counts[r], audit.live_quota_held[r])
        << "step " << step << " replica " << r << ": quota counter drift";
    EXPECT_EQ(audit.quota_counts[r], model.quota_count(static_cast<int>(r)))
        << "step " << step << " replica " << r << ": quota vs model";
  }
}

void expect_same_evictions(const std::vector<VoteEvicted>& real,
                           const std::vector<ModelEntry>& expected,
                           std::uint64_t step) {
  ASSERT_EQ(real.size(), expected.size()) << "step " << step;
  for (std::size_t i = 0; i < real.size(); ++i) {
    EXPECT_EQ(real[i].key, expected[i].key)
        << "step " << step << ": eviction order diverged at casualty " << i;
    EXPECT_EQ(real[i].mask, expected[i].mask) << "step " << step;
    EXPECT_EQ(real[i].released, expected[i].released) << "step " << step;
    EXPECT_EQ(real[i].escalated, expected[i].escalated) << "step " << step;
    EXPECT_EQ(real[i].first_seen_ns, expected[i].first_seen_ns)
        << "step " << step;
  }
}

void run_fuzz(std::uint64_t seed, std::size_t capacity, std::size_t quota,
              int k, std::uint64_t ops) {
  WeightedVoteCache cache(capacity, quota, k);
  ModelCache model(capacity, quota, k);
  std::mt19937_64 rng(seed);

  // A small key space keeps find/vote hitting live entries; a clock that
  // only moves forward keeps sweeps meaningful.
  std::uniform_int_distribution<std::uint64_t> key_dist(1, 4 * capacity);
  std::uniform_int_distribution<int> replica_dist(0, k - 1);
  std::uniform_int_distribution<int> weight_dist(0, 4);
  std::int64_t now = 0;

  std::vector<std::uint64_t> live_keys;
  const auto refresh_live = [&] {
    live_keys.clear();
    for (const ModelEntry& e : model.entries()) live_keys.push_back(e.key);
  };

  for (std::uint64_t step = 0; step < ops; ++step) {
    now += static_cast<std::int64_t>(rng() % 1000);
    const int op = static_cast<int>(rng() % 100);
    if (op < 45) {  // insert a fresh key (+ its first vote, like the core)
      const std::uint64_t key = key_dist(rng);
      if (model.find(key) != nullptr) continue;
      const int replica = replica_dist(rng);
      // 1-in-8 inserts are escalated routing memos (quota-exempt,
      // eviction-spared), roughly the sampled mode's election share.
      const bool escalated = (rng() % 8) == 0;
      std::vector<VoteEvicted> evicted;
      std::vector<ModelEntry> expected;
      const auto slot =
          cache.insert(key, key * 31, now, 200, replica, escalated, evicted);
      model.insert(key, key * 31, now, replica, escalated, expected);
      expect_same_evictions(evicted, expected, step);
      if (!escalated) {  // memos carry no votes in the core
        const double w = static_cast<double>(weight_dist(rng)) / 4.0;
        EXPECT_TRUE(cache.add_vote(slot, replica, w));
        EXPECT_TRUE(model.add_vote(key, replica, w));
      }
    } else if (op < 75) {  // vote on a live entry
      refresh_live();
      if (live_keys.empty()) continue;
      const std::uint64_t key = live_keys[rng() % live_keys.size()];
      const int replica = replica_dist(rng);
      const double w = static_cast<double>(weight_dist(rng)) / 4.0;
      const auto slot = cache.find(key);
      ASSERT_NE(slot, WeightedVoteCache::kNil);
      EXPECT_EQ(cache.add_vote(slot, replica, w),
                model.add_vote(key, replica, w))
          << "step " << step << ": duplicate-vote detection diverged";
    } else if (op < 85) {  // release or erase a live entry
      refresh_live();
      if (live_keys.empty()) continue;
      const std::uint64_t key = live_keys[rng() % live_keys.size()];
      const auto slot = cache.find(key);
      ASSERT_NE(slot, WeightedVoteCache::kNil);
      if ((rng() & 1) != 0) {
        cache.set_released(slot);
        model.set_released(key);
      } else {
        cache.erase(slot);
        model.erase(key);
      }
    } else if (op < 95) {  // sweep everything older than a random horizon
      const std::int64_t horizon = now - static_cast<std::int64_t>(rng() % 20000);
      std::vector<ModelEntry> expected;
      model.sweep(horizon, expected);
      std::size_t i = 0;
      cache.sweep(horizon, [&](WeightedVoteCache::Slot victim) {
        ASSERT_LT(i, expected.size()) << "step " << step;
        EXPECT_EQ(cache.key_of(victim), expected[i].key)
            << "step " << step << ": sweep order diverged";
        ++i;
      });
      EXPECT_EQ(i, expected.size()) << "step " << step;
    } else {  // cache squeeze / restore
      const std::size_t target = 1 + rng() % capacity;
      std::vector<VoteEvicted> evicted;
      std::vector<ModelEntry> expected;
      cache.set_capacity(target, evicted);
      model.set_capacity(target, expected);
      expect_same_evictions(evicted, expected, step);
    }

    if (step % 64 == 0 || step + 1 == ops) {
      expect_equivalent(cache, model, step);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  expect_equivalent(cache, model, ops);
}

TEST(VoteCacheUnit, AddVoteRejectsUnrepresentableReplica) {
  // 1ULL << replica is UB outside [0, 64): the cache must reject such a
  // vote (like a duplicate) instead of corrupting the mask and quota.
  WeightedVoteCache cache(4, 2, 4);
  std::vector<VoteEvicted> evicted;
  const auto slot = cache.insert(1, 31, 0, 200, 0, false, evicted);
  EXPECT_FALSE(cache.add_vote(slot, -1, 1.0));
  EXPECT_FALSE(cache.add_vote(slot, 64, 1.0));
  EXPECT_FALSE(cache.add_vote(slot, 1000, 1.0));
  EXPECT_EQ(cache.mask(slot), 0u);
  EXPECT_DOUBLE_EQ(cache.tally(slot), 0.0);
  EXPECT_TRUE(cache.add_vote(slot, 63, 1.0));  // the mask's last legal bit
  EXPECT_EQ(cache.mask(slot), 1ULL << 63);
}

TEST(VoteCacheUnit, EscalatedMemosAreQuotaExempt) {
  WeightedVoteCache cache(16, /*quota=*/1, /*k=*/2);
  std::vector<VoteEvicted> evicted;
  cache.insert(1, 31, 0, 64, /*first_replica=*/0, /*escalated=*/false,
               evicted);
  // Memos from the same replica neither charge the quota nor push out its
  // singleton.
  cache.insert(2, 62, 1, 64, 0, true, evicted);
  cache.insert(3, 93, 2, 64, 0, true, evicted);
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(cache.size(), 3u);
  // A second real singleton overflows the quota of 1: the oldest
  // singleton goes, not a memo.
  cache.insert(4, 124, 3, 64, 0, false, evicted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].key, 1u);
  EXPECT_EQ(evicted[0].reason, VoteEvictReason::kQuota);
}

TEST(VoteCacheUnit, CapacityEvictionPrefersUnreleasedOverReleasedOverMemos) {
  WeightedVoteCache cache(3, /*quota=*/100, /*k=*/4);
  std::vector<VoteEvicted> evicted;
  // Oldest first: a zero-tally *released* entry, an escalated memo, and an
  // unreleased entry with a higher tally.
  const auto released = cache.insert(1, 31, 0, 64, 0, false, evicted);
  cache.set_released(released);
  cache.insert(2, 62, 1, 64, 1, true, evicted);  // memo
  const auto open = cache.insert(3, 93, 2, 64, 2, false, evicted);
  EXPECT_TRUE(cache.add_vote(open, 2, 1.0));
  ASSERT_TRUE(evicted.empty());

  // Full: the unreleased entry is the victim even though the released one
  // is older AND lower-tally — evicting a released slot while sibling
  // copies are in flight is the duplicate-egress hazard.
  const auto fourth = cache.insert(4, 124, 3, 64, 3, false, evicted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].key, 3u);

  // With no unreleased entry left, the *oldest* released entry goes
  // before the memo.
  cache.set_released(fourth);
  cache.insert(5, 155, 4, 64, 3, false, evicted);
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[1].key, 1u);
  EXPECT_TRUE(evicted[1].released);

  // Memos only as the very last resort: fill the cache with nothing but
  // memos and the oldest one surrenders.
  cache.insert(6, 186, 5, 64, 0, true, evicted);  // evicts 5 (unreleased)
  cache.insert(7, 217, 6, 64, 1, true, evicted);  // evicts 4 (released)
  ASSERT_EQ(evicted.size(), 4u);
  EXPECT_EQ(evicted[2].key, 5u);
  EXPECT_EQ(evicted[3].key, 4u);
  cache.insert(8, 248, 7, 64, 2, true, evicted);
  ASSERT_EQ(evicted.size(), 5u);
  EXPECT_EQ(evicted[4].key, 2u);  // the oldest memo
  EXPECT_TRUE(evicted[4].escalated);
}

TEST(VoteCacheProperty, MatchesModelUnderQuotaPressure) {
  run_fuzz(/*seed=*/0xF00D, /*capacity=*/32, /*quota=*/4, /*k=*/4,
           /*ops=*/20000);
}

TEST(VoteCacheProperty, MatchesModelUnderTinyCapacity) {
  run_fuzz(/*seed=*/0xBEEF, /*capacity=*/8, /*quota=*/2, /*k=*/3,
           /*ops=*/20000);
}

TEST(VoteCacheProperty, MatchesModelWithoutQuotaPressure) {
  run_fuzz(/*seed=*/0xCAFE, /*capacity=*/64, /*quota=*/1000, /*k=*/5,
           /*ops=*/20000);
}

TEST(VoteCacheDeathTest, RejectsFleetBeyondReplicaMask) {
  EXPECT_DEATH(WeightedVoteCache(16, 4, 0), "64-bit replica mask");
  EXPECT_DEATH(WeightedVoteCache(16, 4, WeightedVoteCache::kMaxReplicas + 1),
               "64-bit replica mask");
}

}  // namespace
}  // namespace netco::core
