// Unit and property tests for CompareCore — the majority-vote packet cache
// at the heart of NetCo. The §IV/§III invariants under test:
//
//   I1  a packet is released at most once;
//   I2  under kMajority, a packet is released only after a strict majority
//       of replicas delivered it;
//   I3  a packet delivered by fewer than a quorum of replicas (fabricated/
//       rerouted/modified minority traffic) is never released and is
//       evicted within the hold timeout;
//   I4  same-replica duplicates never advance the vote;
//   I5  a single replica flooding unique packets cannot evict other
//       replicas' pending packets beyond its own quota (buffer isolation),
//       and trips the rate-limit block advice;
//   I6  replicas absent from a threshold of agreed packets trigger the
//       unavailability alarm.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "net/headers.h"
#include "netco/compare_core.h"

namespace netco::core {
namespace {

net::Packet numbered_packet(std::uint32_t n, std::size_t payload = 64,
                            std::uint8_t fill = 0) {
  std::vector<std::byte> data(payload, std::byte{fill});
  return net::build_udp(
      net::EthernetHeader{.dst = net::MacAddress::from_id(2),
                          .src = net::MacAddress::from_id(1)},
      std::nullopt,
      net::Ipv4Header{.src = net::Ipv4Address::from_id(1),
                      .dst = net::Ipv4Address::from_id(2),
                      .identification = static_cast<std::uint16_t>(n)},
      net::UdpHeader{.src_port = static_cast<std::uint16_t>(n >> 16),
                     .dst_port = 5001},
      data);
}

sim::TimePoint at_ms(std::int64_t ms) {
  return sim::TimePoint::origin() + sim::Duration::milliseconds(ms);
}

TEST(CompareCore, QuorumArithmetic) {
  CompareConfig c;
  c.k = 2;
  EXPECT_EQ(c.quorum(), 2);
  c.k = 3;
  EXPECT_EQ(c.quorum(), 2);
  c.k = 5;
  EXPECT_EQ(c.quorum(), 3);
  c.k = 7;
  EXPECT_EQ(c.quorum(), 4);
}

TEST(CompareCore, ReleasesOnSecondOfThree) {
  CompareCore core(CompareConfig{.k = 3});
  const auto p = numbered_packet(1);
  EXPECT_FALSE(core.ingest(0, p, at_ms(0)).has_value());
  const auto released = core.ingest(1, p, at_ms(0));
  ASSERT_TRUE(released.has_value());
  EXPECT_EQ(*released, p);
  EXPECT_EQ(core.stats().released, 1u);
}

TEST(CompareCore, ThirdCopyIgnoredAfterRelease) {
  CompareCore core(CompareConfig{.k = 3});
  const auto p = numbered_packet(1);
  core.ingest(0, p, at_ms(0));
  core.ingest(1, p, at_ms(0));
  EXPECT_FALSE(core.ingest(2, p, at_ms(0)).has_value());  // I1
  EXPECT_EQ(core.stats().released, 1u);
  EXPECT_EQ(core.stats().late_after_release, 1u);
  // Paper-faithful retention keeps the completed entry until the hold
  // timeout; the sweep then cleans it.
  EXPECT_EQ(core.stats().cache_entries, 1u);
  core.sweep(at_ms(100));
  EXPECT_EQ(core.stats().cache_entries, 0u);
}

TEST(CompareCore, EagerEraseModeRetiresCompletedEntries) {
  CompareConfig config{.k = 3};
  config.retain_completed = false;
  CompareCore core(config);
  const auto p = numbered_packet(1);
  core.ingest(0, p, at_ms(0));
  core.ingest(1, p, at_ms(0));
  core.ingest(2, p, at_ms(0));
  EXPECT_EQ(core.stats().cache_entries, 0u);
}

TEST(CompareCore, K5NeedsThree) {
  CompareCore core(CompareConfig{.k = 5});
  const auto p = numbered_packet(9);
  EXPECT_FALSE(core.ingest(0, p, at_ms(0)).has_value());
  EXPECT_FALSE(core.ingest(3, p, at_ms(0)).has_value());
  EXPECT_TRUE(core.ingest(4, p, at_ms(0)).has_value());  // I2
}

TEST(CompareCore, SameReplicaDuplicatesDoNotVote) {
  CompareCore core(CompareConfig{.k = 3});
  const auto p = numbered_packet(1);
  core.ingest(0, p, at_ms(0));
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(core.ingest(0, p, at_ms(0)).has_value());  // I4
  }
  EXPECT_EQ(core.stats().duplicates_same_port, 10u);
  EXPECT_EQ(core.stats().released, 0u);
}

TEST(CompareCore, MinorityPacketEvictedOnTimeout) {
  CompareConfig config{.k = 3};
  config.hold_timeout = sim::Duration::milliseconds(10);
  CompareCore core(config);
  const auto fabricated = numbered_packet(666);
  EXPECT_FALSE(core.ingest(0, fabricated, at_ms(0)).has_value());
  EXPECT_EQ(core.sweep(at_ms(5)), 0u);   // not yet
  EXPECT_EQ(core.sweep(at_ms(11)), 1u);  // I3
  EXPECT_EQ(core.stats().evicted_timeout, 1u);
  EXPECT_EQ(core.stats().released, 0u);

  // Even if the same packet shows up again later, the vote restarts.
  EXPECT_FALSE(core.ingest(1, fabricated, at_ms(12)).has_value());
}

TEST(CompareCore, DifferentPacketsTrackedIndependently) {
  CompareCore core(CompareConfig{.k = 3});
  const auto p1 = numbered_packet(1);
  const auto p2 = numbered_packet(2);
  core.ingest(0, p1, at_ms(0));
  core.ingest(0, p2, at_ms(0));
  // One vote each: neither released.
  EXPECT_EQ(core.stats().released, 0u);
  const auto r1 = core.ingest(1, p1, at_ms(0));
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(*r1, p1);
  const auto r2 = core.ingest(2, p2, at_ms(0));
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(*r2, p2);
}

TEST(CompareCore, FullPacketModeDistinguishesPayloadBits) {
  // Bit-by-bit: a one-bit payload difference is a different packet.
  CompareCore core(CompareConfig{.k = 3});
  auto benign = numbered_packet(1);
  auto tampered = benign;
  net::corrupt_byte(tampered, tampered.size() - 1);
  core.ingest(0, benign, at_ms(0));
  EXPECT_FALSE(core.ingest(1, tampered, at_ms(0)).has_value());
  // Only the two benign copies agree.
  EXPECT_TRUE(core.ingest(2, benign, at_ms(0)).has_value());
}

TEST(CompareCore, HeaderOnlyModeIgnoresPayload) {
  CompareConfig config{.k = 3};
  config.mode = CompareMode::kHeaderOnly;
  config.header_prefix = 42;  // Eth(14) + IPv4(20) + UDP(8), untagged
  CompareCore core(config);
  auto a = numbered_packet(1, 64, 0x00);
  auto b = numbered_packet(1, 64, 0xFF);  // same headers, different payload
  core.ingest(0, a, at_ms(0));
  const auto released = core.ingest(1, b, at_ms(0));
  ASSERT_TRUE(released.has_value());
  // The exemplar (first copy) is what gets released — the documented
  // trust consequence of header-only comparison.
  EXPECT_EQ(*released, a);
}

TEST(CompareCore, HashedModeMatchesOnContentHash) {
  CompareConfig config{.k = 3};
  config.mode = CompareMode::kHashed;
  CompareCore core(config);
  const auto p = numbered_packet(4);
  core.ingest(0, p, at_ms(0));
  EXPECT_TRUE(core.ingest(2, p, at_ms(0)).has_value());
}

TEST(CompareCore, FirstCopyPolicyReleasesImmediately) {
  CompareConfig config{.k = 2};
  config.policy = ReleasePolicy::kFirstCopy;
  config.hold_timeout = sim::Duration::milliseconds(10);
  CompareCore core(config);
  const auto p = numbered_packet(1);
  EXPECT_TRUE(core.ingest(0, p, at_ms(0)).has_value());
  // Partner confirms: no mismatch recorded.
  EXPECT_FALSE(core.ingest(1, p, at_ms(1)).has_value());
  core.sweep(at_ms(20));
  EXPECT_EQ(core.stats().mismatch_detected, 0u);
}

TEST(CompareCore, FirstCopyPolicyDetectsDisagreement) {
  CompareConfig config{.k = 2};
  config.policy = ReleasePolicy::kFirstCopy;
  config.hold_timeout = sim::Duration::milliseconds(10);
  CompareCore core(config);
  auto honest = numbered_packet(1);
  auto tampered = honest;
  net::corrupt_byte(tampered, tampered.size() - 1);
  // Replica 0 delivers the original, replica 1 a modified version: both
  // released (detection cannot prevent), but the timeout exposes that
  // neither packet was confirmed by the partner.
  EXPECT_TRUE(core.ingest(0, honest, at_ms(0)).has_value());
  EXPECT_TRUE(core.ingest(1, tampered, at_ms(0)).has_value());
  core.sweep(at_ms(20));
  EXPECT_EQ(core.stats().mismatch_detected, 2u);  // detection alarm
}

TEST(CompareCore, RateLimitFlagsFloodingReplica) {
  CompareConfig config{.k = 3};
  config.rate_limit_packets = 100;
  config.rate_window = sim::Duration::milliseconds(10);
  config.per_replica_quota = 1000;
  config.cache_capacity = 10'000;
  CompareCore core(config);

  for (std::uint32_t i = 0; i < 150; ++i) {
    core.ingest(1, numbered_packet(i), at_ms(1));
  }
  const auto advice = core.take_advice();
  ASSERT_EQ(advice.block_replicas.size(), 1u);  // I5 (advice part)
  EXPECT_EQ(advice.block_replicas[0], 1);
}

TEST(CompareCore, RateWindowForgetsOldArrivals) {
  CompareConfig config{.k = 3};
  config.rate_limit_packets = 100;
  config.rate_window = sim::Duration::milliseconds(10);
  config.per_replica_quota = 1000;
  config.cache_capacity = 10'000;
  CompareCore core(config);

  // 150 packets, but spread over 15× the window: never above the limit.
  for (std::uint32_t i = 0; i < 150; ++i) {
    core.ingest(1, numbered_packet(i), at_ms(i));
  }
  EXPECT_TRUE(core.take_advice().block_replicas.empty());
}

TEST(CompareCore, QuotaIsolatesFloodingReplica) {
  CompareConfig config{.k = 3};
  config.per_replica_quota = 32;
  config.cache_capacity = 10'000;
  config.rate_limit_packets = 1'000'000;  // disable blocking for this test
  CompareCore core(config);

  // Replica 0 contributes one honest pending packet.
  const auto honest = numbered_packet(0xABCD);
  core.ingest(0, honest, at_ms(0));

  // Replica 1 floods unique garbage well past its quota.
  for (std::uint32_t i = 0; i < 500; ++i) {
    core.ingest(1, numbered_packet(1'000'000 + i), at_ms(1));
  }
  EXPECT_GT(core.stats().evicted_quota, 0u);

  // The honest packet survived the flood and still completes its quorum.
  EXPECT_TRUE(core.ingest(2, honest, at_ms(2)).has_value());  // I5
}

TEST(CompareCore, InactivityAlarmAfterThreshold) {
  CompareConfig config{.k = 3};
  config.inactivity_threshold = 20;
  CompareCore core(config);

  // Replica 2 is dead: every packet completes with replicas {0, 1} and
  // times out waiting for the third.
  for (std::uint32_t i = 0; i < 25; ++i) {
    core.ingest(0, numbered_packet(i), at_ms(static_cast<int>(i)));
    core.ingest(1, numbered_packet(i), at_ms(static_cast<int>(i)));
  }
  core.sweep(at_ms(1000));  // finalize everything
  const auto advice = core.take_advice();
  ASSERT_EQ(advice.inactive_replicas.size(), 1u);  // I6
  EXPECT_EQ(advice.inactive_replicas[0], 2);
}

TEST(CompareCore, NoInactivityAlarmForMinorityPackets) {
  // Fabricated packets that never reach quorum must NOT count against the
  // honest replicas that (correctly) never forwarded them.
  CompareConfig config{.k = 3};
  config.inactivity_threshold = 5;
  config.hold_timeout = sim::Duration::milliseconds(1);
  CompareCore core(config);
  for (std::uint32_t i = 0; i < 50; ++i) {
    core.ingest(0, numbered_packet(i), at_ms(static_cast<int>(2 * i)));
    core.sweep(at_ms(static_cast<int>(2 * i + 1) + 1));
  }
  EXPECT_TRUE(core.take_advice().inactive_replicas.empty());
}

TEST(CompareCore, CapacityCleanupEvictsOldestFirst) {
  CompareConfig config{.k = 3};
  config.cache_capacity = 64;
  config.cleanup_low_water = 0.5;
  config.per_replica_quota = 10'000;
  config.rate_limit_packets = 1'000'000;
  CompareCore core(config);

  for (std::uint32_t i = 0; i < 65; ++i) {
    core.ingest(0, numbered_packet(i), at_ms(static_cast<int>(i)));
  }
  EXPECT_GE(core.stats().cleanup_passes, 1u);
  EXPECT_GT(core.last_cleanup_work(), 0u);
  EXPECT_LE(core.stats().cache_entries, 33u);

  // The newest packet survived; an old one was evicted.
  EXPECT_TRUE(core.ingest(1, numbered_packet(64), at_ms(70)).has_value());
  EXPECT_FALSE(core.ingest(1, numbered_packet(0), at_ms(70)).has_value());
}

// ---------------------------------------------------------------------------
// Property sweep: random adversarial interleavings preserve I1–I3.
// ---------------------------------------------------------------------------

struct PropertyParam {
  int k;
  CompareMode mode;
  std::uint64_t seed;
};

class CompareProperty : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(CompareProperty, MajorityInvariantsHoldUnderRandomAdversary) {
  const auto param = GetParam();
  CompareConfig config{.k = param.k};
  config.mode = param.mode;
  config.hold_timeout = sim::Duration::milliseconds(50);
  config.cache_capacity = 100'000;
  config.per_replica_quota = 100'000;
  config.rate_limit_packets = 1'000'000'000;
  CompareCore core(config);
  Rng rng(param.seed);

  const int quorum = config.quorum();
  const int honest = quorum;  // exactly a quorum of honest replicas
  int released_honest = 0;
  int released_total = 0;
  std::int64_t clock_ms = 0;

  for (std::uint32_t n = 0; n < 300; ++n) {
    clock_ms += 1;
    const auto honest_packet = numbered_packet(n);

    // Adversarial replicas inject garbage before, between and after the
    // honest copies, in random order.
    std::vector<std::pair<int, net::Packet>> events;
    for (int r = 0; r < honest; ++r) events.push_back({r, honest_packet});
    for (int r = honest; r < param.k; ++r) {
      switch (rng.uniform_u64(4)) {
        case 0:  // drop: contribute nothing
          break;
        case 1:  // forward honestly (adversary behaving for cover)
          events.push_back({r, honest_packet});
          break;
        case 2: {  // modified copy
          auto tampered = honest_packet;
          net::corrupt_byte(tampered, tampered.size() - 1);
          events.push_back({r, tampered});
          break;
        }
        case 3:  // fabricated packet
          events.push_back({r, numbered_packet(0x80000000u + n)});
          break;
      }
    }
    // Shuffle the event order.
    for (std::size_t i = events.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(rng.uniform_u64(i));
      std::swap(events[i - 1], events[j]);
    }

    int releases_this_packet = 0;
    for (auto& [replica, packet] : events) {
      const auto released =
          core.ingest(replica, std::move(packet), at_ms(clock_ms));
      if (released.has_value()) {
        ++released_total;
        // I2/I3: whatever is released must be the honest packet — a
        // minority (fabricated or tampered) packet can never win, because
        // the adversary controls fewer than quorum replicas.
        EXPECT_EQ(*released, honest_packet) << "packet " << n;
        ++releases_this_packet;
        ++released_honest;
      }
    }
    // I1: at most one release per packet.
    EXPECT_LE(releases_this_packet, 1) << "packet " << n;
    // The honest quorum always delivers: exactly one release.
    EXPECT_EQ(releases_this_packet, 1) << "packet " << n;

    if (n % 50 == 0) core.sweep(at_ms(clock_ms));
  }
  core.sweep(at_ms(clock_ms + 1000));
  EXPECT_EQ(released_total, 300);
  EXPECT_EQ(core.stats().released, 300u);
  // Everything eventually leaves the cache.
  EXPECT_EQ(core.stats().cache_entries, 0u);
}

// Regression: a kFirstCopy singleton that was released on arrival keeps
// occupying its replica's quota slot until erased. The erase path used to
// skip the slot return for released entries, so detection-mode traffic
// whose partner stayed silent leaked one slot per packet — the counter
// drifted up forever and eventually mislabelled honest traffic as flood.
TEST(CompareCore, ReleasedSingletonReturnsQuotaSlotOnEviction) {
  CompareConfig config;
  config.k = 2;
  config.policy = ReleasePolicy::kFirstCopy;
  config.per_replica_quota = 32;
  config.hold_timeout = sim::Duration::milliseconds(5);
  CompareCore core(config);

  // Far more released-but-unconfirmed packets than the quota, with
  // regular sweeps so each batch expires normally.
  std::int64_t ms = 0;
  for (std::uint32_t n = 0; n < 200; ++n) {
    EXPECT_TRUE(core.ingest(0, numbered_packet(n), at_ms(ms)).has_value());
    if ((n + 1) % 10 == 0) {
      ms += 6;
      core.sweep(at_ms(ms));
    }
  }
  core.sweep(at_ms(ms + 6));
  EXPECT_EQ(core.stats().cache_entries, 0u);

  // Every expired entry returned its slot: the incremental counters match
  // a fresh recount (both zero — the cache is empty).
  const CompareAudit audit = core.audit();
  for (std::size_t r = 0; r < audit.quota_counts.size(); ++r) {
    EXPECT_EQ(audit.quota_counts[r], audit.live_singletons[r])
        << "replica " << r;
  }
  // And the quota never fired: nothing here was a flood.
  EXPECT_EQ(core.stats().evicted_quota, 0u);
}

// Regression: the perturbed-key probe used to stop at the first absent
// key. After an eviction left a hole earlier in a collision chain, later
// copies of a deeper packet started a *second* entry at the hole instead
// of finding the survivor — the vote split and the packet never reached
// quorum. key_mask = 0 forces every packet into one chain.
TEST(CompareCore, CollisionChainSurvivesBaseEviction) {
  CompareConfig config;
  config.k = 3;
  config.hold_timeout = sim::Duration::milliseconds(10);
  config.key_mask = 0;
  CompareCore core(config);

  const auto p1 = numbered_packet(1);
  const auto p2 = numbered_packet(2);
  EXPECT_FALSE(core.ingest(0, p1, at_ms(0)).has_value());
  EXPECT_FALSE(core.ingest(0, p2, at_ms(5)).has_value());  // chained at depth 1
  EXPECT_EQ(core.stats().cache_entries, 2u);

  // p1 times out; its eviction leaves a hole at the chain's base key.
  core.sweep(at_ms(12));
  EXPECT_EQ(core.stats().evicted_timeout, 1u);
  EXPECT_EQ(core.stats().cache_entries, 1u);

  // The confirming copy of p2 must find the survivor past the hole.
  const auto released = core.ingest(1, p2, at_ms(13));
  ASSERT_TRUE(released.has_value());
  EXPECT_EQ(*released, p2);
  EXPECT_EQ(core.stats().released, 1u);
  EXPECT_EQ(core.stats().cache_entries, 1u);

  // A third copy is late traffic on the same entry, not a fresh vote.
  EXPECT_FALSE(core.ingest(2, p2, at_ms(14)).has_value());
  EXPECT_EQ(core.stats().released, 1u);
  EXPECT_EQ(core.stats().late_after_release, 1u);
}

// Deep chains stay navigable: with every packet colliding, each
// confirming copy (arriving in reverse order, so at every depth) must
// land on its own entry, and the bookkeeping must survive the churn.
TEST(CompareCore, CollisionChainManyColliders) {
  CompareConfig config;
  config.k = 3;
  config.key_mask = 0;
  CompareCore core(config);

  std::vector<net::Packet> packets;
  for (std::uint32_t n = 0; n < 8; ++n) {
    packets.push_back(numbered_packet(n));
  }
  for (const auto& p : packets) {
    EXPECT_FALSE(core.ingest(0, p, at_ms(0)).has_value());
  }
  EXPECT_EQ(core.stats().cache_entries, 8u);

  for (auto it = packets.rbegin(); it != packets.rend(); ++it) {
    EXPECT_TRUE(core.ingest(1, *it, at_ms(1)).has_value());
  }
  EXPECT_EQ(core.stats().released, 8u);

  const CompareAudit audit = core.audit();
  EXPECT_TRUE(audit.age_cache_consistent);
  EXPECT_TRUE(audit.age_ordered);
  for (std::size_t r = 0; r < audit.quota_counts.size(); ++r) {
    EXPECT_EQ(audit.quota_counts[r], audit.live_singletons[r]);
  }
}

// A mid-run capacity squeeze (the fault injector's cache-pressure event)
// must clean down immediately and keep every invariant intact.
TEST(CompareCore, CacheSqueezeCleansToNewCapacity) {
  CompareConfig config;
  config.k = 3;
  config.cache_capacity = 256;
  config.cleanup_low_water = 0.75;
  CompareCore core(config);

  for (std::uint32_t n = 0; n < 100; ++n) {
    core.ingest(0, numbered_packet(n), at_ms(1));
  }
  EXPECT_EQ(core.stats().cache_entries, 100u);

  core.set_cache_capacity(40, at_ms(2));
  EXPECT_LE(core.stats().cache_entries, 40u);
  EXPECT_GE(core.stats().cleanup_passes, 1u);

  const CompareAudit audit = core.audit();
  EXPECT_EQ(audit.cache_capacity, 40u);
  EXPECT_TRUE(audit.age_cache_consistent);
  for (std::size_t r = 0; r < audit.quota_counts.size(); ++r) {
    EXPECT_EQ(audit.quota_counts[r], audit.live_singletons[r]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompareProperty,
    ::testing::Values(PropertyParam{3, CompareMode::kFullPacket, 1},
                      PropertyParam{3, CompareMode::kFullPacket, 2},
                      PropertyParam{3, CompareMode::kHashed, 3},
                      PropertyParam{5, CompareMode::kFullPacket, 4},
                      PropertyParam{5, CompareMode::kFullPacket, 5},
                      PropertyParam{5, CompareMode::kHashed, 6},
                      PropertyParam{7, CompareMode::kFullPacket, 7},
                      PropertyParam{9, CompareMode::kFullPacket, 8}),
    [](const ::testing::TestParamInfo<PropertyParam>& pinfo) {
      return "k" + std::to_string(pinfo.param.k) + "_mode" +
             std::to_string(static_cast<int>(pinfo.param.mode)) + "_seed" +
             std::to_string(pinfo.param.seed);
    });

// Construction-time fleet-size validation: replica ids must fit the
// 64-bit vote bitmask, and an out-of-range k must fail at the
// configuration boundary, not as silent vote drops later.
TEST(CompareCoreDeathTest, RejectsZeroK) {
  EXPECT_DEATH(CompareCore core{CompareConfig{.k = 0}}, "k out of range");
}

TEST(CompareCoreDeathTest, RejectsOversizedFleet) {
  EXPECT_DEATH(CompareCore core{CompareConfig{.k = 64}}, "k out of range");
}

}  // namespace
}  // namespace netco::core
