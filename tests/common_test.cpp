// Unit tests for src/common: RNG, formatting, hashing, ids, units.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/fmt.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/strong_id.h"
#include "common/units.h"

namespace netco {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformBoundRespected) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
  }
}

TEST(Rng, UniformBoundOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_u64(1), 0u);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_i64(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit in 1000 draws
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(13);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(17);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceProbabilityApproximatelyHonored) {
  Rng rng(23);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(29);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent.next_u64() == child.next_u64());
  EXPECT_LT(equal, 2);
}

TEST(Fmt, SubstitutesInOrder) {
  EXPECT_EQ(fmt("a={} b={}", 1, "two"), "a=1 b=two");
}

TEST(Fmt, SurplusPlaceholdersPrintLiterally) {
  EXPECT_EQ(fmt("x={} y={}", 5), "x=5 y={}");
}

TEST(Fmt, SurplusArgumentsIgnored) {
  EXPECT_EQ(fmt("x={}", 5, 6, 7), "x=5");
}

TEST(Fmt, NoPlaceholders) { EXPECT_EQ(fmt("plain"), "plain"); }

TEST(Hash, Fnv1aEmptyIsOffset) {
  EXPECT_EQ(fnv1a({}), kFnvOffset);
}

TEST(Hash, Fnv1aKnownVector) {
  // FNV-1a("a") = 0xAF63DC4C8601EC8C
  const std::byte a[] = {std::byte{'a'}};
  EXPECT_EQ(fnv1a(a), 0xAF63DC4C8601EC8CULL);
}

TEST(Hash, DifferentInputsDifferentHashes) {
  const std::byte a[] = {std::byte{1}, std::byte{2}};
  const std::byte b[] = {std::byte{2}, std::byte{1}};
  EXPECT_NE(fnv1a(a), fnv1a(b));
}

TEST(StrongId, DefaultIsInvalid) {
  using TestId = StrongId<struct TestTag>;
  EXPECT_FALSE(TestId{}.valid());
  EXPECT_EQ(TestId{}, TestId::invalid());
}

TEST(StrongId, ComparesByValue) {
  using TestId = StrongId<struct TestTag>;
  EXPECT_LT(TestId{1}, TestId{2});
  EXPECT_EQ(TestId{7}, TestId{7});
  EXPECT_TRUE(TestId{0}.valid());
}

TEST(Units, DataRateConversions) {
  EXPECT_EQ(DataRate::megabits_per_sec(100).bps(), 100'000'000u);
  EXPECT_EQ(DataRate::gigabits_per_sec(1).bps(), 1'000'000'000u);
  EXPECT_DOUBLE_EQ(DataRate::kilobits_per_sec(1500).mbps(), 1.5);
  EXPECT_FALSE(DataRate{}.positive());
  EXPECT_TRUE(DataRate::bits_per_sec(1).positive());
}

}  // namespace
}  // namespace netco
