// End-to-end smoke tests: ping and small transfers through every scenario.
#include <gtest/gtest.h>

#include "scenario/scenarios.h"

namespace netco::scenario {
namespace {

class ScenarioSmoke : public ::testing::TestWithParam<ScenarioKind> {};

TEST_P(ScenarioSmoke, PingCompletesAllCycles) {
  const auto report =
      measure_ping(GetParam(), 10, sim::Duration::milliseconds(5));
  EXPECT_EQ(report.transmitted, 10);
  EXPECT_EQ(report.received, 10) << to_string(GetParam());
  EXPECT_GT(report.avg_ms, 0.0);
}

TEST_P(ScenarioSmoke, UdpLowRateIsLossless) {
  const auto run = measure_udp_at(GetParam(), DataRate::megabits_per_sec(10),
                                  sim::Duration::milliseconds(300));
  EXPECT_NEAR(run.goodput_mbps, 10.0, 1.5) << to_string(GetParam());
  EXPECT_LT(run.loss_rate, 0.001) << to_string(GetParam());
}

TEST_P(ScenarioSmoke, TcpMovesData) {
  // Two runs of 600 ms: long enough that one unlucky RTO early in a run
  // (possible in the loss-heavy k=5 scenarios) cannot drag the mean to
  // zero, short enough to stay fast.
  const auto result =
      measure_tcp(GetParam(), 2, sim::Duration::milliseconds(600));
  EXPECT_GT(result.mbps.mean, 5.0) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, ScenarioSmoke,
    ::testing::Values(ScenarioKind::kLinespeed, ScenarioKind::kDup3,
                      ScenarioKind::kDup5, ScenarioKind::kCentral3,
                      ScenarioKind::kCentral5, ScenarioKind::kPox3),
    [](const ::testing::TestParamInfo<ScenarioKind>& pinfo) {
      return to_string(pinfo.param);
    });

}  // namespace
}  // namespace netco::scenario
