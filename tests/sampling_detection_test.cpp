// Detection-latency regression for sampled verification (§XII): thinning
// the compare to 1-in-16 packets must not blunt the health loop. A
// byzantine corrupt-swap still gets its replica quarantined, and the
// time from swap to quarantine stays within 4x of the unsampled
// baseline — the adaptive period collapses to full verification the
// moment the replica's EWMA degrades, so in practice the two latencies
// track closely.
#include <gtest/gtest.h>

#include "faultinject/fault_plan.h"
#include "scenario/soak.h"

namespace netco::scenario {
namespace {

/// k=5 with the health loop closed and exactly one fault: replica 1
/// turns byzantine-corrupt at 100 ms and honest again at 350 ms.
SoakOptions swap_options(bool sampled) {
  SoakOptions options;
  options.k = 5;
  options.policy = core::ReleasePolicy::kMajority;
  options.seed = 4242;
  options.packets = 5000;  // ~0.5 s of sim time at 16 Mbit/s / 200 B
  options.health.enabled = true;
  options.sampling.enabled = sampled;
  options.inject_default_faults = false;
  using faultinject::FaultEvent;
  using faultinject::FaultKind;
  using faultinject::SwapBehavior;
  options.plan.events.push_back(
      FaultEvent{.at_ns = sim::Duration::milliseconds(100).ns(),
                 .kind = FaultKind::kBehaviorSwap,
                 .replica = 1,
                 .behavior = SwapBehavior::kCorrupt});
  options.plan.events.push_back(
      FaultEvent{.at_ns = sim::Duration::milliseconds(350).ns(),
                 .kind = FaultKind::kBehaviorSwap,
                 .replica = 1,
                 .behavior = SwapBehavior::kHonest});
  return options;
}

TEST(SamplingDetection, CorruptReplicaStillQuarantinedUnderSampling) {
  const SoakResult baseline = run_soak(swap_options(false));
  const SoakResult sampled = run_soak(swap_options(true));

  ASSERT_TRUE(baseline.ok()) << "violations="
                             << baseline.invariants.violations;
  ASSERT_TRUE(sampled.ok()) << "violations="
                            << sampled.invariants.violations;
  for (const auto& detail : sampled.invariants.details) {
    ADD_FAILURE() << detail;
  }

  // The unsampled baseline detects the swap (sanity for the comparison).
  ASSERT_GE(baseline.health_quarantines, 1u);
  ASSERT_GT(baseline.time_to_quarantine_ns, 0);

  // Sampled mode still detects and quarantines...
  EXPECT_GE(sampled.health_quarantines, 1u);
  ASSERT_GT(sampled.time_to_quarantine_ns, 0)
      << "sampled run never quarantined the corrupt replica";

  // ...within the detection-latency budget.
  EXPECT_LE(sampled.time_to_quarantine_ns,
            4 * baseline.time_to_quarantine_ns)
      << "sampled detection took "
      << static_cast<double>(sampled.time_to_quarantine_ns) / 1e6
      << " ms vs baseline "
      << static_cast<double>(baseline.time_to_quarantine_ns) / 1e6 << " ms";

  // The fast path was actually in force before and after the incident.
  EXPECT_GT(sampled.fastpath_released, 0u);
  EXPECT_GT(sampled.sampled_escalated, 0u);
  // At-most-once egress held throughout the byzantine window.
  EXPECT_EQ(sampled.duplicate_egress, 0u);
}

TEST(SamplingDetection, SwapScenarioIsSeedDeterministic) {
  const SoakResult a = run_soak(swap_options(true));
  const SoakResult b = run_soak(swap_options(true));
  EXPECT_EQ(a.stream_hash, b.stream_hash);
  EXPECT_EQ(a.egress_set_hash, b.egress_set_hash);
  EXPECT_EQ(a.trace_records, b.trace_records);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.health_quarantines, b.health_quarantines);
  EXPECT_EQ(a.time_to_quarantine_ns, b.time_to_quarantine_ns);
  EXPECT_EQ(a.fastpath_released, b.fastpath_released);
  EXPECT_EQ(a.sampled_escalated, b.sampled_escalated);
}

}  // namespace
}  // namespace netco::scenario
