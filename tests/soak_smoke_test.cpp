// Tier-1 smoke for the soak harness: a short fault-injected run must
// complete with zero invariant violations and reproduce bit-identically
// under the same seed. The full-length version lives in bench/soak_netco.
#include <gtest/gtest.h>

#include "scenario/soak.h"

namespace netco::scenario {
namespace {

SoakOptions smoke_options() {
  SoakOptions options;
  options.k = 3;
  options.policy = core::ReleasePolicy::kMajority;
  options.seed = 77;
  options.packets = 2500;  // ~0.25 s of sim time at 16 Mbit/s / 200 B
  return options;
}

TEST(SoakSmoke, ShortRunHoldsInvariantsUnderFaults) {
  const SoakResult result = run_soak(smoke_options());
  EXPECT_TRUE(result.ok()) << "violations=" << result.invariants.violations;
  for (const auto& detail : result.invariants.details) {
    ADD_FAILURE() << detail;
  }
  EXPECT_GE(result.datagrams_sent, 2500u);
  EXPECT_GT(result.compare_released, 0u);
  EXPECT_GT(result.fault_events_applied, 0u);  // the plan actually ran
  EXPECT_GT(result.audits, 0u);
  EXPECT_GT(result.invariants.checks, 0u);
}

TEST(SoakSmoke, SameSeedIsBitReproducible) {
  const SoakResult a = run_soak(smoke_options());
  const SoakResult b = run_soak(smoke_options());
  EXPECT_EQ(a.stream_hash, b.stream_hash);
  EXPECT_EQ(a.trace_records, b.trace_records);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.compare_released, b.compare_released);
}

TEST(SoakSmoke, SameSeedIsBitReproducibleK2FirstCopy) {
  SoakOptions options = smoke_options();
  options.k = 2;
  options.policy = core::ReleasePolicy::kFirstCopy;
  options.seed = 101;
  const SoakResult a = run_soak(options);
  const SoakResult b = run_soak(options);
  EXPECT_TRUE(a.ok()) << "violations=" << a.invariants.violations;
  EXPECT_EQ(a.stream_hash, b.stream_hash);
  EXPECT_EQ(a.trace_records, b.trace_records);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.compare_released, b.compare_released);
}

TEST(SoakSmoke, HealthLoopRunIsBitReproducible) {
  SoakOptions options = smoke_options();
  options.health.enabled = true;
  const SoakResult a = run_soak(options);
  const SoakResult b = run_soak(options);
  EXPECT_TRUE(a.ok()) << "violations=" << a.invariants.violations;
  EXPECT_EQ(a.stream_hash, b.stream_hash);
  EXPECT_EQ(a.trace_records, b.trace_records);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.compare_released, b.compare_released);
  // Health outcomes are part of the determinism contract too.
  EXPECT_EQ(a.health_quarantines, b.health_quarantines);
  EXPECT_EQ(a.health_readmits, b.health_readmits);
  EXPECT_EQ(a.health_bans, b.health_bans);
  EXPECT_EQ(a.health_probe_windows, b.health_probe_windows);
  EXPECT_EQ(a.first_quarantine_ns, b.first_quarantine_ns);
  EXPECT_EQ(a.first_readmit_ns, b.first_readmit_ns);
}

// Configuration validation happens at harness construction, with full
// context, instead of surfacing later as silent vote drops.
TEST(SoakSmokeDeathTest, RejectsOversizedFleet) {
  SoakOptions options = smoke_options();
  options.k = 64;
  EXPECT_DEATH(run_soak(options), "SoakOptions.k out of range");
}

TEST(SoakSmokeDeathTest, RejectsEmptyRun) {
  SoakOptions options = smoke_options();
  options.packets = 0;
  EXPECT_DEATH(run_soak(options), "NETCO_ASSERT failed");
}

}  // namespace
}  // namespace netco::scenario
