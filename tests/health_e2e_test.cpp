// End-to-end recovery proof for the health loop (tier-1 slice of the
// bench-scale version in bench/soak_netco and examples/self_healing):
//
//   E1  byzantine swap mid-run → quarantine within a bounded sim-time
//       window, and post-quarantine (tail) goodput recovers to ≥95% of a
//       fault-free baseline;
//   E2  crash → quarantine, restart → probation probes → readmission;
//   E3  the whole loop is seed-deterministic: same seed, same trace
//       stream hash, same health counters, twice in a row;
//   E4  with the loop disabled the run is bit-identical to one that has
//       never heard of src/health (guarded by the golden-trace tests; the
//       cheap invariant checked here: zero health activity, zero cost).
#include <gtest/gtest.h>

#include "scenario/soak.h"

namespace netco::scenario {
namespace {

// 16 Mbit/s at 200 B ≈ 100 µs/datagram: 8000 packets ≈ 0.8 s of sim
// time; the tail window is the last quarter, 0.6–0.8 s.
SoakOptions recovery_options() {
  SoakOptions options;
  options.k = 5;
  options.policy = core::ReleasePolicy::kMajority;
  options.seed = 4242;
  options.packets = 8000;
  options.inject_default_faults = false;
  options.health.enabled = true;
  return options;
}

faultinject::FaultEvent corrupt_swap(std::int64_t at_ms, int replica) {
  faultinject::FaultEvent e;
  e.at_ns = sim::Duration::milliseconds(at_ms).ns();
  e.kind = faultinject::FaultKind::kBehaviorSwap;
  e.replica = replica;
  e.behavior = faultinject::SwapBehavior::kCorrupt;
  return e;
}

faultinject::FaultEvent crash(std::int64_t at_ms, int replica) {
  faultinject::FaultEvent e;
  e.at_ns = sim::Duration::milliseconds(at_ms).ns();
  e.kind = faultinject::FaultKind::kReplicaCrash;
  e.replica = replica;
  return e;
}

faultinject::FaultEvent restart(std::int64_t at_ms, int replica) {
  faultinject::FaultEvent e;
  e.at_ns = sim::Duration::milliseconds(at_ms).ns();
  e.kind = faultinject::FaultKind::kReplicaRestart;
  e.replica = replica;
  return e;
}

TEST(HealthE2E, ByzantineSwapQuarantinedAndGoodputRecovers) {
  // Fault-free baseline: same topology, same health loop, no faults.
  const SoakResult baseline = run_soak(recovery_options());
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline.health_quarantines, 0u);  // nothing to react to
  ASSERT_GT(baseline.tail_goodput_ratio, 0.0);

  SoakOptions options = recovery_options();
  options.plan.events = {corrupt_swap(200, 1)};
  options.plan.normalize();
  const SoakResult result = run_soak(options);

  ASSERT_TRUE(result.ok()) << "violations=" << result.invariants.violations;
  EXPECT_GE(result.health_quarantines, 1u);
  EXPECT_EQ(result.health_readmits, 0u);  // still corrupting every probe

  // Bounded reaction: the swap lands at 200 ms; verdicts form one
  // hold_timeout after release and the EWMA needs a handful of them.
  ASSERT_GE(result.first_quarantine_ns, 0);
  EXPECT_GE(result.first_quarantine_ns,
            sim::Duration::milliseconds(200).ns());
  EXPECT_LE(result.first_quarantine_ns,
            sim::Duration::milliseconds(400).ns());

  // The acceptance bar: once the quarantine has settled, the tail of the
  // run delivers at least 95% of what the fault-free baseline does.
  EXPECT_GE(result.tail_goodput_ratio, 0.95 * baseline.tail_goodput_ratio);
}

TEST(HealthE2E, CrashQuarantinedThenRestartReadmitted) {
  SoakOptions options = recovery_options();
  options.plan.events = {crash(200, 3), restart(450, 3)};
  options.plan.normalize();
  const SoakResult result = run_soak(options);

  ASSERT_TRUE(result.ok()) << "violations=" << result.invariants.violations;
  EXPECT_GE(result.health_quarantines, 1u);
  EXPECT_GE(result.health_readmits, 1u);
  EXPECT_EQ(result.health_bans, 0u);
  EXPECT_GT(result.health_probe_windows, 0u);

  // Quarantine happens while the replica is dark...
  ASSERT_GE(result.first_quarantine_ns, 0);
  EXPECT_GE(result.first_quarantine_ns,
            sim::Duration::milliseconds(200).ns());
  EXPECT_LE(result.first_quarantine_ns,
            sim::Duration::milliseconds(450).ns());
  // ...and readmission only after the restart, within a bounded number
  // of probation windows (probe_period 20 ms, 12 consecutive matches).
  ASSERT_GE(result.first_readmit_ns, 0);
  EXPECT_GE(result.first_readmit_ns, sim::Duration::milliseconds(450).ns());
  EXPECT_LE(result.first_readmit_ns, sim::Duration::milliseconds(800).ns());
}

TEST(HealthE2E, RecoveryRunIsSeedDeterministic) {
  SoakOptions options = recovery_options();
  options.plan.events = {corrupt_swap(200, 1), crash(300, 3),
                         restart(500, 3)};
  options.plan.normalize();
  const SoakResult a = run_soak(options);
  const SoakResult b = run_soak(options);

  EXPECT_EQ(a.stream_hash, b.stream_hash);
  EXPECT_EQ(a.trace_records, b.trace_records);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.health_quarantines, b.health_quarantines);
  EXPECT_EQ(a.health_readmits, b.health_readmits);
  EXPECT_EQ(a.health_bans, b.health_bans);
  EXPECT_EQ(a.first_quarantine_ns, b.first_quarantine_ns);
  EXPECT_EQ(a.first_readmit_ns, b.first_readmit_ns);
}

TEST(HealthE2E, DisabledLoopStaysCompletelyInert) {
  SoakOptions options = recovery_options();
  options.health.enabled = false;
  options.plan.events = {corrupt_swap(200, 1)};
  options.plan.normalize();
  const SoakResult result = run_soak(options);

  EXPECT_EQ(result.health_quarantines, 0u);
  EXPECT_EQ(result.health_probe_windows, 0u);
  EXPECT_EQ(result.first_quarantine_ns, -1);
  // k=5 majority absorbs one corrupt replica even without the loop; the
  // loop's value is the shrunken quorum + probation, not bare delivery.
  EXPECT_TRUE(result.ok());
}

}  // namespace
}  // namespace netco::scenario
