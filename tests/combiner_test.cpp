// Integration tests for the assembled combiner (hub + replicas + compare
// service) on the Fig. 3 topology: every §II attack class is mounted on a
// replica, and the end-to-end guarantees are asserted.
#include <gtest/gtest.h>

#include <vector>

#include "adversary/behaviors.h"
#include "host/ping.h"
#include "host/udp_app.h"
#include "netco/hub.h"
#include "scenario/scenarios.h"
#include "topo/figure3.h"

namespace netco::core {
namespace {

/// A Fig. 3 Central3 topology with helpers to attack a replica.
struct CombinerFixture {
  topo::Figure3Topology topo;

  explicit CombinerFixture(int k = 3, std::uint64_t seed = 1)
      : topo(make_opts(k, seed)) {}

  static topo::Figure3Options make_opts(int k, std::uint64_t seed) {
    auto opts = scenario::make_options(k == 5
                                           ? scenario::ScenarioKind::kCentral5
                                           : scenario::ScenarioKind::kCentral3,
                                       seed);
    return opts;
  }

  host::PingReport ping(int count = 10) {
    host::PingConfig config;
    config.dst_mac = topo.h2().mac();
    config.dst_ip = topo.h2().ip();
    config.count = count;
    config.interval = sim::Duration::milliseconds(2);
    config.timeout = sim::Duration::milliseconds(200);
    host::IcmpPinger pinger(topo.h1(), config);
    pinger.start();
    const auto deadline = topo.simulator().now() + sim::Duration::seconds(3);
    while (!pinger.finished() && topo.simulator().now() < deadline) {
      topo.simulator().run_for(sim::Duration::milliseconds(10));
    }
    return pinger.report();
  }

  std::uint64_t total_evicted() {
    std::uint64_t evicted = 0;
    for (const auto* edge : topo.combiner().edges) {
      if (const auto* s = topo.combiner().compare->stats_for(edge->name()))
        evicted += s->evicted_timeout + s->evicted_capacity + s->evicted_quota;
    }
    return evicted;
  }
};

TEST(Combiner, StructureMatchesConfiguration) {
  CombinerFixture f(3);
  const auto& inst = f.topo.combiner();
  EXPECT_EQ(inst.replicas.size(), 3u);
  EXPECT_EQ(inst.edges.size(), 2u);
  ASSERT_NE(inst.compare, nullptr);
  ASSERT_NE(inst.compare_controller, nullptr);
  // Each edge: 1 neighbor port + 3 replica ports.
  EXPECT_EQ(inst.edges[0]->port_count(), 4u);
  // Each replica: one port per edge.
  EXPECT_EQ(inst.replicas[0]->port_count(), 2u);
  // Distinct vendor personalities (the diversity assumption).
  EXPECT_NE(inst.replicas[0]->profile().vendor,
            inst.replicas[1]->profile().vendor);
  EXPECT_NE(inst.replicas[1]->profile().vendor,
            inst.replicas[2]->profile().vendor);
}

TEST(Combiner, BenignTrafficFlowsBothWays) {
  CombinerFixture f;
  const auto report = f.ping(10);
  EXPECT_EQ(report.received, 10);
  EXPECT_EQ(report.duplicates, 0);  // the compare removed every duplicate
}

// --- §II attack class 1: rerouting ------------------------------------------

TEST(Combiner, RerouteAttackContainedAndServiceSurvives) {
  CombinerFixture f;
  // The malicious replica sends h2-bound packets back toward h1's edge.
  adversary::RerouteBehavior reroute(
      adversary::match_dl_dst(f.topo.h2().mac()),
      f.topo.combiner().replica_edge_port[0][0]);
  f.topo.combiner().replicas[0]->set_interceptor(&reroute);

  const auto report = f.ping(10);
  EXPECT_EQ(report.received, 10);  // two honest replicas out-vote it
  EXPECT_GT(reroute.attack_stats().packets_attacked, 0u);
  // The rerouted copies died inside the combiner, not at a host.
  EXPECT_EQ(f.topo.h1().stats().rx_stray, 0u);
  EXPECT_EQ(f.topo.h2().stats().rx_stray, 0u);
}

// --- §II attack class 2: mirroring -----------------------------------------

TEST(Combiner, MirrorTowardOriginScreenedOut) {
  // Exfiltration attempt toward the sender's own side: the trusted edge's
  // "ingress port matches MAC source" screen eats the copy before it can
  // even reach the compare.
  CombinerFixture f;
  adversary::MirrorBehavior mirror(
      adversary::match_dl_dst(f.topo.h2().mac()),
      f.topo.combiner().replica_edge_port[0][0]);  // back toward h1's edge
  f.topo.combiner().replicas[0]->set_interceptor(&mirror);

  const auto report = f.ping(10);
  EXPECT_EQ(report.received, 10);
  EXPECT_GT(mirror.attack_stats().packets_attacked, 0u);
  // No mirrored copy reached either host.
  EXPECT_EQ(f.topo.h1().stats().rx_stray, 0u);
  EXPECT_EQ(report.duplicates, 0);
}

TEST(Combiner, MirrorAlongPathDetectedAsDuplicate) {
  // Mirroring along the legitimate direction doubles the replica's copies;
  // the compare counts them as same-port duplicates and never forwards a
  // second copy downstream.
  CombinerFixture f;
  adversary::MirrorBehavior mirror(
      adversary::match_dl_dst(f.topo.h2().mac()),
      f.topo.combiner().replica_edge_port[0][1]);  // same direction as route
  f.topo.combiner().replicas[0]->set_interceptor(&mirror);

  const auto report = f.ping(10);
  EXPECT_EQ(report.received, 10);
  EXPECT_EQ(report.duplicates, 0);
  std::uint64_t dups = 0;
  for (const auto* edge : f.topo.combiner().edges) {
    if (const auto* s = f.topo.combiner().compare->stats_for(edge->name()))
      dups += s->duplicates_same_port;
  }
  EXPECT_GT(dups, 0u);
}

// --- §II attack class 3: packet modification --------------------------------

TEST(Combiner, PayloadCorruptionFilteredOut) {
  CombinerFixture f;
  adversary::ModifyBehavior modify(adversary::match_all(),
                                   adversary::ModifyBehavior::corrupt_payload());
  f.topo.combiner().replicas[0]->set_interceptor(&modify);

  const auto report = f.ping(10);
  EXPECT_EQ(report.received, 10);
  // Delivered payloads were the honest ones: the host checksum counter
  // stays clean because corrupted copies never left the compare.
  EXPECT_EQ(f.topo.h2().stats().rx_bad_checksum, 0u);
}

TEST(Combiner, VlanRetagFilteredOut) {
  // The §II isolation-violation attack: retagging to hop VLAN domains.
  CombinerFixture f;
  adversary::ModifyBehavior modify(adversary::match_all(),
                                   adversary::ModifyBehavior::retag_vlan(999));
  f.topo.combiner().replicas[0]->set_interceptor(&modify);
  const auto report = f.ping(10);
  EXPECT_EQ(report.received, 10);
}

TEST(Combiner, MacRewriteSpoofBlockedByScreen) {
  // The replica rewrites the source MAC to impersonate h2 toward h1's
  // side; the edge's "ingress port matches MAC source" screen drops it.
  CombinerFixture f;
  adversary::ModifyBehavior modify(
      adversary::match_dl_dst(f.topo.h2().mac()),
      [mac = f.topo.h1().mac()](net::Packet& p) { net::set_dl_src(p, mac); });
  f.topo.combiner().replicas[0]->set_interceptor(&modify);
  const auto report = f.ping(10);
  EXPECT_EQ(report.received, 10);
  EXPECT_EQ(f.topo.h2().stats().rx_stray, 0u);
}

// --- §II attack class 3/4: dropping ----------------------------------------

TEST(Combiner, SingleDropperCannotCensor) {
  CombinerFixture f;
  adversary::DropBehavior drop(adversary::match_all());
  f.topo.combiner().replicas[0]->set_interceptor(&drop);
  const auto report = f.ping(10);
  EXPECT_EQ(report.received, 10);  // 2-of-3 still a majority
}

TEST(Combiner, TwoDroppersDefeatK3) {
  // The flip side of the guarantee: a quorum of malicious replicas CAN
  // censor — k=3 tolerates exactly one.
  CombinerFixture f;
  adversary::DropBehavior drop0(adversary::match_all());
  adversary::DropBehavior drop1(adversary::match_all());
  f.topo.combiner().replicas[0]->set_interceptor(&drop0);
  f.topo.combiner().replicas[1]->set_interceptor(&drop1);
  const auto report = f.ping(5);
  EXPECT_EQ(report.received, 0);
}

TEST(Combiner, K5ToleratesTwoDroppers) {
  CombinerFixture f(5);
  adversary::DropBehavior drop0(adversary::match_all());
  adversary::DropBehavior drop1(adversary::match_all());
  f.topo.combiner().replicas[0]->set_interceptor(&drop0);
  f.topo.combiner().replicas[1]->set_interceptor(&drop1);
  const auto report = f.ping(10);
  EXPECT_EQ(report.received, 10);
}

TEST(Combiner, K5TwoModifiersOutvoted) {
  CombinerFixture f(5);
  adversary::ModifyBehavior m0(adversary::match_all(),
                               adversary::ModifyBehavior::corrupt_payload());
  adversary::ModifyBehavior m1(adversary::match_all(),
                               adversary::ModifyBehavior::corrupt_payload());
  f.topo.combiner().replicas[0]->set_interceptor(&m0);
  f.topo.combiner().replicas[1]->set_interceptor(&m1);
  const auto report = f.ping(10);
  EXPECT_EQ(report.received, 10);
}

// --- §II attack class 4: DoS flooding ---------------------------------------

TEST(Combiner, FloodingReplicaGetsBlockedAndTrafficSurvives) {
  CombinerFixture f;
  // The malicious replica fabricates a high-rate stream toward h2's edge —
  // enough to saturate the compare CPU outright.
  adversary::DosFlooder::Config flood_config;
  flood_config.out_port = f.topo.combiner().replica_edge_port[0][1];
  flood_config.packets_per_sec = 200'000;
  flood_config.packet_bytes = 200;
  flood_config.dst_mac = f.topo.h2().mac();
  flood_config.src_mac = f.topo.h1().mac();
  adversary::DosFlooder flooder(*f.topo.combiner().replicas[0], flood_config);
  flooder.start();

  // Pings spaced widely enough to observe the recovery after the compare
  // blocks the flooding port (expected within a few tens of ms).
  host::PingConfig ping_config;
  ping_config.dst_mac = f.topo.h2().mac();
  ping_config.dst_ip = f.topo.h2().ip();
  ping_config.count = 10;
  ping_config.interval = sim::Duration::milliseconds(50);
  ping_config.timeout = sim::Duration::milliseconds(500);
  host::IcmpPinger pinger(f.topo.h1(), ping_config);
  pinger.start();
  while (!pinger.finished() &&
         f.topo.simulator().now() < sim::TimePoint::origin() +
                                        sim::Duration::seconds(5)) {
    f.topo.simulator().run_for(sim::Duration::milliseconds(10));
  }
  const auto report = pinger.report();
  flooder.stop();

  EXPECT_GT(flooder.emitted(), 1000u);
  // No fabricated packet ever reached h2 as data.
  EXPECT_EQ(report.duplicates, 0);
  // The compare's garbage monitor advised blocking the flooding replica.
  bool blocked_alarm = false;
  for (const auto& alarm : f.topo.combiner().compare->alarms()) {
    if (alarm.kind == CompareAlarm::Kind::kPortBlocked && alarm.replica == 0)
      blocked_alarm = true;
  }
  EXPECT_TRUE(blocked_alarm);
  // Availability: once the port is blocked, echo cycles complete again.
  EXPECT_GE(report.received, 7);
}

// --- failure injection (§IV case 3) ------------------------------------------

TEST(Combiner, DeadReplicaLinkRaisesInactivityAlarmAndServiceSurvives) {
  // Mid-run, replica 2 loses both of its links (fiber cut / power loss).
  // Traffic continues on the 2-of-3 quorum and the compare eventually
  // declares the replica unavailable — the paper's administrator alarm.
  auto opts = CombinerFixture::make_opts(3, 1);
  opts.combiner.compare.inactivity_threshold = 20;
  topo::Figure3Topology topo(opts);

  topo.simulator().schedule_after(sim::Duration::milliseconds(20), [&] {
    for (const auto& links : topo.combiner().edge_replica_link) {
      links[2]->set_down(true);
    }
  });

  host::PingConfig config;
  config.dst_mac = topo.h2().mac();
  config.dst_ip = topo.h2().ip();
  config.count = 60;
  config.interval = sim::Duration::milliseconds(2);
  config.timeout = sim::Duration::milliseconds(200);
  host::IcmpPinger pinger(topo.h1(), config);
  pinger.start();
  while (!pinger.finished() && topo.simulator().now().sec() < 3.0) {
    topo.simulator().run_for(sim::Duration::milliseconds(10));
  }
  topo.simulator().run_for(sim::Duration::milliseconds(200));

  EXPECT_EQ(pinger.report().received, 60);  // availability held throughout
  bool inactive_alarm = false;
  for (const auto& alarm : topo.combiner().compare->alarms()) {
    if (alarm.kind == CompareAlarm::Kind::kReplicaInactive &&
        alarm.replica == 2)
      inactive_alarm = true;
  }
  EXPECT_TRUE(inactive_alarm);
}

// --- trusted Hub node --------------------------------------------------------

TEST(Hub, SplitsUpstreamToAllReplicaPorts) {
  sim::Simulator sim;
  device::Network net(sim);
  struct Probe : device::Node {
    using Node::Node;
    void handle_packet(device::PortIndex, net::Packet p) override {
      received.push_back(std::move(p));
    }
    std::vector<net::Packet> received;
  };
  auto& hub = net.add_node<Hub>("hub");
  auto& up = net.add_node<Probe>("up");
  auto& r1 = net.add_node<Probe>("r1");
  auto& r2 = net.add_node<Probe>("r2");
  auto& r3 = net.add_node<Probe>("r3");
  net.connect(hub, up);  // port 0 = upstream
  net.connect(hub, r1);
  net.connect(hub, r2);
  net.connect(hub, r3);

  up.send(0, net::Packet::zeroed(100));
  sim.run();
  EXPECT_EQ(r1.received.size(), 1u);
  EXPECT_EQ(r2.received.size(), 1u);
  EXPECT_EQ(r3.received.size(), 1u);
  EXPECT_EQ(up.received.size(), 0u);
  EXPECT_EQ(hub.split_count(), 1u);

  r2.send(0, net::Packet::zeroed(60));
  sim.run();
  EXPECT_EQ(up.received.size(), 1u);
  EXPECT_EQ(hub.merge_count(), 1u);
}

}  // namespace
}  // namespace netco::core
