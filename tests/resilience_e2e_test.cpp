// End-to-end resilience: a mid-soak crash of the *trusted* compare must
// be survived with zero duplicate egress and bounded gap loss — via warm
// standby failover (k ∈ {3, 5}, under fault-plan churn), via warm restart
// from a checkpoint, or via a degraded-mode policy when neither exists.
// The duplicate-egress invariant (QuorumTraceChecker::check_duplicates)
// is armed for every one of these runs, so "zero duplicates" is checked
// per packet against the trace stream, not inferred from counters.
#include <gtest/gtest.h>

#include "scenario/soak.h"

namespace netco::scenario {
namespace {

/// A short failover soak. The heartbeat is tightened far below the fault
/// plan's minimum outage length ((horizon-start)/64 ≥ 5 ms) so detection
/// plus promotion always beats the crash's scheduled warm restart — the
/// restart then finds the old primary fenced and leaves it retired.
SoakOptions failover_options(int k, std::uint64_t seed) {
  SoakOptions options;
  options.k = k;
  options.policy = core::ReleasePolicy::kMajority;
  options.seed = seed;
  options.packets = 4000;  // ~0.4 s of sim time at 16 Mbit/s / 200 B
  if (k >= 5) options.rate = DataRate::megabits_per_sec(10);
  options.resilience.enabled = true;
  options.resilience.standby = true;
  options.resilience.heartbeat_period = sim::Duration::microseconds(500);
  options.resilience.heartbeat_miss_threshold = 2;
  options.resilience.backoff_factor = 1.5;
  return options;
}

void expect_clean_failover(const SoakResult& r) {
  EXPECT_TRUE(r.ok()) << "violations=" << r.invariants.violations;
  for (const auto& detail : r.invariants.details) {
    ADD_FAILURE() << detail;
  }
  // At-most-once egress: not one packet released twice onto the wire,
  // across the primary/standby handover included.
  EXPECT_EQ(r.duplicate_egress, 0u);
  EXPECT_EQ(r.resilience_failovers, 1u);
  // Detection (≤ 0.5 ms + 0.75 ms backoff) plus 200 µs promotion.
  EXPECT_GT(r.time_to_failover_ns, 0);
  EXPECT_LT(r.time_to_failover_ns, sim::Duration::milliseconds(10).ns());
  // The at-most-once guarantee costs gap loss bounded by the quorums the
  // standby shadow-judged during the outage window — a handful of packets
  // at this rate, never an unbounded stall.
  EXPECT_LE(r.gap_loss, 200u);
  EXPECT_GT(r.resilience_checkpoints, 0u);
  // The plant keeps delivering. The exact ratio is dominated by the rest
  // of the churn plan (loss bursts, byzantine swaps), not by the failover
  // itself — 80% is the loose bound that proves the loss stayed bounded.
  EXPECT_GE(static_cast<double>(r.delivered_unique),
            0.80 * static_cast<double>(r.datagrams_sent));
}

TEST(ResilienceE2E, CompareCrashFailsOverK3) {
  const SoakResult result = run_soak(failover_options(3, 501));
  expect_clean_failover(result);
}

TEST(ResilienceE2E, CompareCrashFailsOverK5) {
  const SoakResult result = run_soak(failover_options(5, 502));
  expect_clean_failover(result);
}

TEST(ResilienceE2E, FailoverMetricsAreSeedDeterministic) {
  for (const int k : {3, 5}) {
    const SoakOptions options = failover_options(k, 601);
    const SoakResult a = run_soak(options);
    const SoakResult b = run_soak(options);
    EXPECT_EQ(a.stream_hash, b.stream_hash) << "k=" << k;
    EXPECT_EQ(a.trace_records, b.trace_records) << "k=" << k;
    EXPECT_EQ(a.metrics_json, b.metrics_json) << "k=" << k;
    // The failover telemetry is part of the determinism contract.
    EXPECT_EQ(a.time_to_failover_ns, b.time_to_failover_ns) << "k=" << k;
    EXPECT_EQ(a.gap_loss, b.gap_loss) << "k=" << k;
    EXPECT_EQ(a.resilience_checkpoints, b.resilience_checkpoints) << "k=" << k;
    EXPECT_EQ(a.downtime_drops, b.downtime_drops) << "k=" << k;
  }
}

TEST(ResilienceE2E, WarmRestartRecoversWithoutStandby) {
  // No standby: the crash is bridged by checkpoint + warm restart. The
  // 80 ms outage drops traffic (fail-closed default), then the restore
  // brings the compare back and the tail of the run is healthy again.
  SoakOptions options;
  options.k = 3;
  options.seed = 503;
  options.packets = 4000;
  options.resilience.enabled = true;
  options.plan.events.push_back(
      {.at_ns = sim::Duration::milliseconds(150).ns(),
       .kind = faultinject::FaultKind::kCompareCrash,
       .duration_ns = sim::Duration::milliseconds(80).ns()});
  options.plan.normalize();

  const SoakResult r = run_soak(options);
  EXPECT_TRUE(r.ok()) << "violations=" << r.invariants.violations;
  for (const auto& detail : r.invariants.details) {
    ADD_FAILURE() << detail;
  }
  EXPECT_EQ(r.duplicate_egress, 0u);
  EXPECT_EQ(r.resilience_failovers, 0u);      // nobody to fail over to
  EXPECT_EQ(r.resilience_degraded_entries, 1u);  // declared dead meanwhile
  EXPECT_GT(r.downtime_drops, 0u);            // the outage was real
  EXPECT_GT(r.resilience_checkpoints, 0u);
  EXPECT_LT(r.delivered_unique, r.datagrams_sent);
  // Post-restore health: the last quarter of the run delivers like a
  // fault-free plant.
  EXPECT_GE(r.tail_goodput_ratio, 0.95);
}

TEST(ResilienceE2E, HeartbeatFalsePositiveFailoverIsDuplicateFree) {
  // A monitoring-path partition, primary alive throughout: the watchdog
  // promotes anyway (it cannot distinguish), but fencing runs before the
  // standby goes live, so even this worst case yields zero duplicates —
  // and zero gap loss, because the primary released right up to the fence.
  SoakOptions options;
  options.k = 3;
  options.seed = 504;
  options.packets = 4000;
  options.resilience.enabled = true;
  options.resilience.standby = true;
  options.plan.events.push_back(
      {.at_ns = sim::Duration::milliseconds(150).ns(),
       .kind = faultinject::FaultKind::kHeartbeatLoss,
       .duration_ns = sim::Duration::milliseconds(100).ns()});
  options.plan.normalize();

  const SoakResult r = run_soak(options);
  EXPECT_TRUE(r.ok()) << "violations=" << r.invariants.violations;
  EXPECT_EQ(r.duplicate_egress, 0u);
  EXPECT_EQ(r.resilience_failovers, 1u);
  EXPECT_EQ(r.gap_loss, 0u);
  // No real fault: delivery stays essentially perfect across the handover.
  EXPECT_GE(static_cast<double>(r.delivered_unique),
            0.97 * static_cast<double>(r.datagrams_sent));
}

TEST(ResilienceE2E, DegradedPoliciesBehaveAsSpecified) {
  // One unrecoverable compare crash at t = 150 ms of a ~400 ms run, no
  // standby. What happens next is the policy's call.
  const auto run_policy = [](resilience::DegradedPolicy policy) {
    SoakOptions options;
    options.k = 3;
    options.seed = 505;
    options.packets = 4000;
    options.resilience.enabled = true;
    options.resilience.policy = policy;
    options.plan.events.push_back(
        {.at_ns = sim::Duration::milliseconds(150).ns(),
         .kind = faultinject::FaultKind::kCompareCrash,
         .duration_ns = 0});  // dead for good
    options.plan.normalize();
    return run_soak(options);
  };

  const SoakResult closed = run_policy(resilience::DegradedPolicy::kFailClosed);
  const SoakResult open =
      run_policy(resilience::DegradedPolicy::kFailOpenSingle);
  const SoakResult fstatic =
      run_policy(resilience::DegradedPolicy::kFailStatic);

  for (const SoakResult* r : {&closed, &open, &fstatic}) {
    EXPECT_TRUE(r->ok()) << "violations=" << r->invariants.violations;
    EXPECT_EQ(r->duplicate_egress, 0u);
    EXPECT_EQ(r->resilience_failovers, 0u);
    EXPECT_EQ(r->resilience_degraded_entries, 1u);
  }

  // fail_closed: safety over availability — everything after the crash
  // punts into the dead process and drops.
  EXPECT_GT(closed.downtime_drops, 0u);
  EXPECT_LT(static_cast<double>(closed.delivered_unique),
            0.60 * static_cast<double>(closed.datagrams_sent));

  // fail_open_single / fail_static: availability restored through the
  // designated replica once the bypass engages (rewire latency resp.
  // switch keepalive after declare-dead), at the cost of the vote.
  EXPECT_GE(static_cast<double>(open.delivered_unique),
            0.85 * static_cast<double>(open.datagrams_sent));
  EXPECT_GE(static_cast<double>(fstatic.delivered_unique),
            0.85 * static_cast<double>(fstatic.datagrams_sent));
  EXPECT_GT(open.delivered_unique, closed.delivered_unique + 1000);
  EXPECT_GT(fstatic.delivered_unique, closed.delivered_unique + 1000);
}

}  // namespace
}  // namespace netco::scenario
