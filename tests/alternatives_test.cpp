// Tests for the §IX alternative architectures: sampling-based detection
// and the inband middlebox compare.
#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "device/network.h"
#include "host/host.h"
#include "host/ping.h"
#include "netco/sampling.h"
#include "scenario/scenarios.h"
#include "topo/figure3.h"
#include "topo/inband.h"

namespace netco::core {
namespace {

// --- sampling combiner ---------------------------------------------------

struct SamplingFixture {
  sim::Simulator sim;
  device::Network net{sim};
  host::Host& h1;
  host::Host& h2;
  SamplingCombinerInstance inst;

  explicit SamplingFixture(double rate, int primary = 0)
      : h1(net.add_node<host::Host>("h1", net::MacAddress::from_id(1),
                                    net::Ipv4Address::from_id(1))),
        h2(net.add_node<host::Host>("h2", net::MacAddress::from_id(2),
                                    net::Ipv4Address::from_id(2))) {
    SamplingCombinerOptions options;
    options.sample_rate = rate;
    options.primary_replica = primary;
    inst = build_sampling_combiner(
        net, options,
        {PortAttachment{.neighbor = &h1, .link = {}, .local_macs = {h1.mac()}},
         PortAttachment{.neighbor = &h2, .link = {}, .local_macs = {h2.mac()}}},
        "sampling");
    inst.install_replica_route(h1.mac(), 0);
    inst.install_replica_route(h2.mac(), 1);
  }

  host::PingReport ping(int count = 30) {
    host::PingConfig config;
    config.dst_mac = h2.mac();
    config.dst_ip = h2.ip();
    config.count = count;
    config.interval = sim::Duration::milliseconds(2);
    config.timeout = sim::Duration::milliseconds(200);
    host::IcmpPinger pinger(h1, config);
    pinger.start();
    while (!pinger.finished() && sim.now().sec() < 3.0) {
      sim.run_for(sim::Duration::milliseconds(10));
    }
    // Let the compare's sweep finalize sampled entries.
    sim.run_for(sim::Duration::milliseconds(100));
    return pinger.report();
  }

  std::uint64_t mismatches() const {
    std::uint64_t total = 0;
    for (const auto* edge : inst.edges) {
      if (const auto* s = inst.compare->stats_for(edge->name()))
        total += s->mismatch_detected;
    }
    return total;
  }
  std::uint64_t compare_ingested() const {
    std::uint64_t total = 0;
    for (const auto* edge : inst.edges) {
      if (const auto* s = inst.compare->stats_for(edge->name()))
        total += s->ingested;
    }
    return total;
  }
};

TEST(SamplingCombiner, BenignTrafficFlowsWithoutCompareHolding) {
  SamplingFixture f(/*rate=*/1.0);
  const auto report = f.ping(20);
  EXPECT_EQ(report.received, 20);
  EXPECT_EQ(report.duplicates, 0);  // only the primary copy is forwarded
  EXPECT_EQ(f.mismatches(), 0u);
  // Everything sampled at rate 1: 3 copies × (20 requests + 20 replies).
  EXPECT_EQ(f.compare_ingested(), 120u);
}

TEST(SamplingCombiner, SampleRateCutsCompareLoad) {
  SamplingFixture full(1.0);
  full.ping(30);
  SamplingFixture tenth(0.1, 0);
  tenth.ping(30);
  EXPECT_LT(tenth.compare_ingested(), full.compare_ingested() / 3);
}

TEST(SamplingCombiner, ZeroRateMeansNoVerification) {
  SamplingFixture f(0.0);
  const auto report = f.ping(10);
  EXPECT_EQ(report.received, 10);
  EXPECT_EQ(f.compare_ingested(), 0u);
}

TEST(SamplingCombiner, DetectsCorruptingSecondaryWithoutServiceImpact) {
  SamplingFixture f(1.0);
  adversary::ModifyBehavior modify(adversary::match_all(),
                                   adversary::ModifyBehavior::corrupt_payload());
  f.inst.replicas[1]->set_interceptor(&modify);  // secondary
  const auto report = f.ping(20);
  EXPECT_EQ(report.received, 20);             // delivery unaffected
  EXPECT_GT(f.mismatches(), 0u);              // but detected
  EXPECT_EQ(f.h2.stats().rx_bad_checksum, 0u);
}

TEST(SamplingCombiner, MaliciousPrimaryIsDetectedButNotPrevented) {
  // The honest limitation of sampling detection: the primary's output is
  // forwarded unverified, so corruption reaches the host — yet the
  // compare still raises the alarm.
  SamplingFixture f(1.0);
  adversary::ModifyBehavior modify(adversary::match_all(),
                                   adversary::ModifyBehavior::corrupt_payload());
  f.inst.replicas[0]->set_interceptor(&modify);  // the primary
  const auto report = f.ping(20);
  EXPECT_EQ(report.received, 0);  // corrupted requests fail host checksum
  EXPECT_GT(f.h2.stats().rx_bad_checksum, 0u);
  EXPECT_GT(f.mismatches(), 0u);  // ...but the operator knows
}

TEST(SamplingCombiner, SamplingDecisionConsistentAcrossCopies) {
  SamplingEdgeLogic::Config config;
  config.sample_rate = 0.5;
  SamplingEdgeLogic logic(config);
  for (std::uint32_t n = 0; n < 64; ++n) {
    std::vector<std::byte> payload(64, std::byte{static_cast<unsigned char>(n)});
    const auto packet = net::build_udp(
        net::EthernetHeader{.dst = net::MacAddress::from_id(2),
                            .src = net::MacAddress::from_id(1)},
        std::nullopt,
        net::Ipv4Header{.src = net::Ipv4Address::from_id(1),
                        .dst = net::Ipv4Address::from_id(2)},
        net::UdpHeader{.src_port = 1, .dst_port = 2}, payload);
    const auto copy = packet;
    EXPECT_EQ(logic.is_sampled(packet), logic.is_sampled(copy));
  }
}

// --- inband middlebox compare ---------------------------------------------

host::PingReport inband_ping(topo::InbandCombinerTopology& topo,
                             int count = 20) {
  host::PingConfig config;
  config.dst_mac = topo.h2().mac();
  config.dst_ip = topo.h2().ip();
  config.count = count;
  config.interval = sim::Duration::milliseconds(2);
  config.timeout = sim::Duration::milliseconds(200);
  host::IcmpPinger pinger(topo.h1(), config);
  pinger.start();
  while (!pinger.finished() && topo.simulator().now().sec() < 3.0) {
    topo.simulator().run_for(sim::Duration::milliseconds(10));
  }
  return pinger.report();
}

TEST(InbandCompare, BenignTrafficBothDirections) {
  topo::InbandCombinerTopology topo(topo::InbandOptions{});
  const auto report = inband_ping(topo);
  EXPECT_EQ(report.received, 20);
  EXPECT_EQ(report.duplicates, 0);
  EXPECT_EQ(topo.mb_forward().middlebox_stats().released, 20u);
  EXPECT_EQ(topo.mb_reverse().middlebox_stats().released, 20u);
}

TEST(InbandCompare, MasksCorruptingReplica) {
  topo::InbandCombinerTopology topo(topo::InbandOptions{});
  adversary::ModifyBehavior modify(adversary::match_all(),
                                   adversary::ModifyBehavior::corrupt_payload());
  topo.replica(0).set_interceptor(&modify);
  const auto report = inband_ping(topo);
  EXPECT_EQ(report.received, 20);
  EXPECT_EQ(topo.h2().stats().rx_bad_checksum, 0u);
  topo.simulator().run_for(sim::Duration::milliseconds(100));
  EXPECT_GT(topo.mb_forward().core().stats().evicted_timeout, 0u);
}

TEST(InbandCompare, MasksDroppingReplica) {
  topo::InbandCombinerTopology topo(topo::InbandOptions{});
  adversary::DropBehavior drop(adversary::match_all());
  topo.replica(1).set_interceptor(&drop);
  const auto report = inband_ping(topo);
  EXPECT_EQ(report.received, 20);
}

TEST(InbandCompare, DirectReplicaInjectionDroppedAtEdge) {
  // A malicious replica tries to shortcut past the middlebox by sending
  // straight to the egress edge: the edge's drop rules eat it.
  topo::InbandCombinerTopology topo(topo::InbandOptions{});
  adversary::RerouteBehavior reroute(
      adversary::match_dl_dst(topo.h2().mac()), /*wrong_port=*/2);  // to eB
  topo.replica(0).set_interceptor(&reroute);
  const auto report = inband_ping(topo);
  EXPECT_EQ(report.received, 20);  // other replicas still carry the quorum
  EXPECT_EQ(topo.h2().stats().rx_stray, 0u);
}

TEST(InbandCompare, LowerRttThanOutOfBand) {
  // The point of the inband architecture: no controller round trip.
  topo::InbandCombinerTopology inband(topo::InbandOptions{});
  const auto inband_report = inband_ping(inband, 20);

  topo::Figure3Topology outofband(
      scenario::make_options(scenario::ScenarioKind::kCentral3, 1));
  host::PingConfig config;
  config.dst_mac = outofband.h2().mac();
  config.dst_ip = outofband.h2().ip();
  config.count = 20;
  config.interval = sim::Duration::milliseconds(2);
  host::IcmpPinger pinger(outofband.h1(), config);
  pinger.start();
  while (!pinger.finished() && outofband.simulator().now().sec() < 3.0) {
    outofband.simulator().run_for(sim::Duration::milliseconds(10));
  }
  const auto oob_report = pinger.report();

  EXPECT_EQ(inband_report.received, 20);
  EXPECT_EQ(oob_report.received, 20);
  EXPECT_LT(inband_report.avg_ms, oob_report.avg_ms);
}

}  // namespace
}  // namespace netco::core
