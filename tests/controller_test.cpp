// Unit tests for the controller framework, learning switch and static
// routing apps.
#include <gtest/gtest.h>

#include <vector>

#include "controller/controller.h"
#include "controller/learning_switch.h"
#include "controller/static_routing.h"
#include "device/network.h"
#include "net/headers.h"
#include "openflow/switch.h"

namespace netco::controller {
namespace {

using device::Network;

net::Packet udp_packet(std::uint32_t src_id, std::uint32_t dst_id) {
  std::vector<std::byte> payload(64, std::byte{0});
  return net::build_udp(
      net::EthernetHeader{.dst = net::MacAddress::from_id(dst_id),
                          .src = net::MacAddress::from_id(src_id)},
      std::nullopt,
      net::Ipv4Header{.src = net::Ipv4Address::from_id(src_id),
                      .dst = net::Ipv4Address::from_id(dst_id)},
      net::UdpHeader{.src_port = 1, .dst_port = 2}, payload);
}

class Probe : public device::Node {
 public:
  using Node::Node;
  void handle_packet(device::PortIndex port, net::Packet packet) override {
    received.push_back({port, std::move(packet)});
  }
  std::vector<std::pair<device::PortIndex, net::Packet>> received;
};

/// App that counts packet-ins and records service times.
class CountingApp : public App {
 public:
  void on_packet_in(Controller& controller, openflow::ControlChannel&,
                    openflow::PacketIn) override {
    ++count;
    times.push_back(controller.simulator().now());
  }
  int count = 0;
  std::vector<sim::TimePoint> times;
};

TEST(Controller, PacketInReachesAppAfterLatencyAndCost) {
  sim::Simulator sim;
  Network net(sim);
  auto& sw = net.add_node<openflow::OpenFlowSwitch>(
      "sw", openflow::SwitchProfile{.vendor = "t",
                                    .processing_delay = sim::Duration::zero()});
  auto& h = net.add_node<Probe>("h");
  net.connect(sw, h);

  CountingApp app;
  CostProfile profile;
  profile.per_packet_in = sim::Duration::microseconds(50);
  profile.channel_latency = sim::Duration::microseconds(100);
  profile.channel_jitter = sim::Duration::zero();
  profile.service_jitter = 0.0;
  Controller controller(sim, "ctl", app, profile);
  controller.attach(sw);

  h.send(0, udp_packet(1, 2));  // miss → packet-in
  sim.run();
  ASSERT_EQ(app.count, 1);
  // link (~1µs prop + tx) + channel 100µs + service 50µs.
  EXPECT_GE(app.times[0].ns(), sim::Duration::microseconds(150).ns());
}

TEST(Controller, MessagesServicedFifoOneAtATime) {
  sim::Simulator sim;
  Network net(sim);
  auto& sw = net.add_node<openflow::OpenFlowSwitch>(
      "sw", openflow::SwitchProfile{.vendor = "t",
                                    .processing_delay = sim::Duration::zero()});
  auto& h = net.add_node<Probe>("h");
  net.connect(sw, h);

  CountingApp app;
  CostProfile profile;
  profile.per_packet_in = sim::Duration::microseconds(100);
  profile.channel_latency = sim::Duration::zero();
  profile.channel_jitter = sim::Duration::zero();
  profile.service_jitter = 0.0;
  Controller controller(sim, "ctl", app, profile);
  controller.attach(sw);

  for (int i = 0; i < 3; ++i) h.send(0, udp_packet(1, 2));
  sim.run();
  ASSERT_EQ(app.count, 3);
  // Service completions must be >= 100 µs apart (single CPU).
  EXPECT_GE((app.times[1] - app.times[0]).ns(),
            sim::Duration::microseconds(100).ns());
  EXPECT_GE((app.times[2] - app.times[1]).ns(),
            sim::Duration::microseconds(100).ns());
}

TEST(Controller, QueueOverflowDropsAndCounts) {
  sim::Simulator sim;
  Network net(sim);
  auto& sw = net.add_node<openflow::OpenFlowSwitch>(
      "sw", openflow::SwitchProfile{.vendor = "t",
                                    .processing_delay = sim::Duration::zero()});
  auto& h = net.add_node<Probe>("h");
  net.connect(sw, h);

  CountingApp app;
  CostProfile profile;
  profile.per_packet_in = sim::Duration::seconds(1);  // glacial
  profile.channel_latency = sim::Duration::zero();
  profile.channel_jitter = sim::Duration::zero();
  profile.service_jitter = 0.0;
  profile.max_queue = 4;
  Controller controller(sim, "ctl", app, profile);
  controller.attach(sw);

  for (int i = 0; i < 10; ++i) h.send(0, udp_packet(1, 2));
  sim.run_until(sim::TimePoint::origin() + sim::Duration::milliseconds(100));
  EXPECT_EQ(controller.stats().packet_ins_received, 10u);
  EXPECT_GT(controller.stats().packet_ins_dropped, 0u);
}

TEST(Controller, ChargeExtraDelaysNextMessage) {
  sim::Simulator sim;
  Network net(sim);
  auto& sw = net.add_node<openflow::OpenFlowSwitch>(
      "sw", openflow::SwitchProfile{.vendor = "t",
                                    .processing_delay = sim::Duration::zero()});
  auto& h = net.add_node<Probe>("h");
  net.connect(sw, h);

  struct ChargingApp : App {
    void on_packet_in(Controller& controller, openflow::ControlChannel&,
                      openflow::PacketIn) override {
      times.push_back(controller.simulator().now());
      if (times.size() == 1)
        controller.charge_extra(sim::Duration::milliseconds(5));
    }
    std::vector<sim::TimePoint> times;
  } app;

  CostProfile profile;
  profile.per_packet_in = sim::Duration::microseconds(10);
  profile.channel_latency = sim::Duration::zero();
  profile.channel_jitter = sim::Duration::zero();
  profile.service_jitter = 0.0;
  Controller controller(sim, "ctl", app, profile);
  controller.attach(sw);

  h.send(0, udp_packet(1, 2));
  h.send(0, udp_packet(1, 2));
  sim.run();
  ASSERT_EQ(app.times.size(), 2u);
  EXPECT_GE((app.times[1] - app.times[0]).ns(),
            sim::Duration::milliseconds(5).ns());
}

TEST(LearningSwitch, FloodsUnknownThenInstallsFlow) {
  sim::Simulator sim;
  Network net(sim);
  auto& sw = net.add_node<openflow::OpenFlowSwitch>("sw");
  auto& a = net.add_node<Probe>("a");
  auto& b = net.add_node<Probe>("b");
  auto& c = net.add_node<Probe>("c");
  net.connect(sw, a);
  net.connect(sw, b);
  net.connect(sw, c);

  LearningSwitchApp app;
  Controller controller(sim, "ctl", app);
  controller.attach(sw);

  // a (id 1) → b (id 2): unknown destination → flooded to b and c.
  a.send(0, udp_packet(1, 2));
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(c.received.size(), 1u);
  EXPECT_EQ(app.learned_count(), 1u);

  // b → a: a's port is known now → unicast + flow installed.
  b.send(0, udp_packet(2, 1));
  sim.run();
  EXPECT_EQ(a.received.size(), 1u);
  EXPECT_EQ(c.received.size(), 1u);  // no extra flood copy
  EXPECT_GE(sw.table().size(), 1u);

  // a → b again: now hardware-switched without controller involvement.
  const auto packet_ins_before = controller.stats().packet_ins_received;
  b.send(0, udp_packet(2, 1));
  sim.run();
  EXPECT_EQ(a.received.size(), 2u);
  EXPECT_EQ(controller.stats().packet_ins_received, packet_ins_before);
}

TEST(StaticRouting, InstallDirectRoute) {
  sim::Simulator sim;
  Network net(sim);
  auto& sw = net.add_node<openflow::OpenFlowSwitch>("sw");
  auto& a = net.add_node<Probe>("a");
  auto& b = net.add_node<Probe>("b");
  net.connect(sw, a);
  net.connect(sw, b);
  install_mac_route(sw, net::MacAddress::from_id(2), 1);
  a.send(0, udp_packet(1, 2));
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(StaticRouting, DropRuleSilencesDestination) {
  sim::Simulator sim;
  Network net(sim);
  auto& sw = net.add_node<openflow::OpenFlowSwitch>("sw");
  auto& a = net.add_node<Probe>("a");
  auto& b = net.add_node<Probe>("b");
  net.connect(sw, a);
  net.connect(sw, b);
  install_mac_route(sw, net::MacAddress::from_id(2), 1, 10);
  install_mac_drop(sw, net::MacAddress::from_id(2), 20);  // higher priority
  a.send(0, udp_packet(1, 2));
  sim.run();
  EXPECT_EQ(b.received.size(), 0u);
}

TEST(StaticRouting, AppPushesRoutesOverChannel) {
  sim::Simulator sim;
  Network net(sim);
  auto& sw = net.add_node<openflow::OpenFlowSwitch>("sw");
  auto& a = net.add_node<Probe>("a");
  auto& b = net.add_node<Probe>("b");
  net.connect(sw, a);
  net.connect(sw, b);

  RouteMap routes;
  routes["sw"] = {{net::MacAddress::from_id(2), 1}};
  StaticRoutingApp app(std::move(routes));
  Controller controller(sim, "ctl", app);
  controller.attach(sw);
  sim.run();  // let the flow-mods land
  EXPECT_EQ(sw.table().size(), 1u);

  a.send(0, udp_packet(1, 2));
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);

  // Unrouted destination becomes a policy miss.
  a.send(0, udp_packet(1, 9));
  sim.run();
  EXPECT_EQ(app.miss_count(), 1u);
}

TEST(FlowStats, RoundTripReturnsCounters) {
  sim::Simulator sim;
  Network net(sim);
  auto& sw = net.add_node<openflow::OpenFlowSwitch>("sw");
  auto& a = net.add_node<Probe>("a");
  auto& b = net.add_node<Probe>("b");
  net.connect(sw, a);
  net.connect(sw, b);
  install_mac_route(sw, net::MacAddress::from_id(2), 1);

  LearningSwitchApp app;  // any app; we only need the channel
  Controller controller(sim, "ctl", app);
  auto& channel = controller.attach(sw);

  for (int i = 0; i < 4; ++i) a.send(0, udp_packet(1, 2));
  sim.run();

  // Screen method 2 of the §VI case study: poll the flow counters.
  std::vector<openflow::FlowStatsEntry> rows;
  bool done = false;
  openflow::Match pattern;
  pattern.with_dl_dst(net::MacAddress::from_id(2));
  channel.request_flow_stats(pattern, [&](auto r) {
    rows = std::move(r);
    done = true;
  });
  sim.run();
  ASSERT_TRUE(done);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].packet_count, 4u);
  EXPECT_GT(rows[0].byte_count, 0u);
}

TEST(FlowStats, WildcardPatternReturnsAllEntries) {
  sim::Simulator sim;
  Network net(sim);
  auto& sw = net.add_node<openflow::OpenFlowSwitch>("sw");
  auto& a = net.add_node<Probe>("a");
  net.connect(sw, a);
  install_mac_route(sw, net::MacAddress::from_id(2), 0);
  install_mac_route(sw, net::MacAddress::from_id(3), 0);

  LearningSwitchApp app;
  Controller controller(sim, "ctl", app);
  auto& channel = controller.attach(sw);
  std::size_t count = 0;
  channel.request_flow_stats(openflow::Match{},
                             [&](auto rows) { count = rows.size(); });
  sim.run();
  EXPECT_EQ(count, 2u);
}

}  // namespace
}  // namespace netco::controller
