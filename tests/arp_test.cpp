// ARP tests: wire format, host resolver behaviour, and resolution across
// the NetCo combiner (broadcast who-has must survive the majority vote).
#include <gtest/gtest.h>

#include <optional>

#include "device/network.h"
#include "host/host.h"
#include "net/headers.h"
#include "scenario/scenarios.h"
#include "topo/figure3.h"

namespace netco::host {
namespace {

using device::Network;

TEST(Arp, WireRoundTrip) {
  const net::ArpHeader request{.oper = net::kArpRequest,
                               .sender_mac = net::MacAddress::from_id(1),
                               .sender_ip = net::Ipv4Address::from_id(1),
                               .target_mac = net::MacAddress{},
                               .target_ip = net::Ipv4Address::from_id(2)};
  const auto packet = net::build_arp(request);
  const auto parsed = net::parse_packet(packet);
  ASSERT_TRUE(parsed && parsed->arp);
  EXPECT_EQ(parsed->arp->oper, net::kArpRequest);
  EXPECT_EQ(parsed->arp->sender_mac, net::MacAddress::from_id(1));
  EXPECT_EQ(parsed->arp->target_ip, net::Ipv4Address::from_id(2));
  EXPECT_TRUE(parsed->eth.dst.is_broadcast());  // requests broadcast
}

TEST(Arp, ReplyIsUnicast) {
  const auto packet = net::build_arp(
      net::ArpHeader{.oper = net::kArpReply,
                     .sender_mac = net::MacAddress::from_id(2),
                     .sender_ip = net::Ipv4Address::from_id(2),
                     .target_mac = net::MacAddress::from_id(1),
                     .target_ip = net::Ipv4Address::from_id(1)});
  EXPECT_EQ(net::parse_packet(packet)->eth.dst, net::MacAddress::from_id(1));
}

struct ArpFixture {
  sim::Simulator sim;
  Network net{sim};
  Host& a;
  Host& b;
  ArpFixture()
      : a(net.add_node<Host>("a", net::MacAddress::from_id(1),
                             net::Ipv4Address::from_id(1))),
        b(net.add_node<Host>("b", net::MacAddress::from_id(2),
                             net::Ipv4Address::from_id(2))) {
    net.connect(a, b);
  }
};

TEST(Arp, ResolvesDirectNeighbor) {
  ArpFixture f;
  std::optional<net::MacAddress> answer;
  f.a.arp_resolve(f.b.ip(),
                  [&](std::optional<net::MacAddress> mac) { answer = mac; });
  f.sim.run();
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(*answer, f.b.mac());
  // Both caches learned (the responder gleans the asker).
  EXPECT_EQ(f.a.arp_cache().at(f.b.ip()), f.b.mac());
  EXPECT_EQ(f.b.arp_cache().at(f.a.ip()), f.a.mac());
}

TEST(Arp, SecondResolveHitsCacheImmediately) {
  ArpFixture f;
  f.a.arp_resolve(f.b.ip(), [](std::optional<net::MacAddress>) {});
  f.sim.run();
  bool answered_synchronously = false;
  f.a.arp_resolve(f.b.ip(), [&](std::optional<net::MacAddress> mac) {
    answered_synchronously = mac.has_value();
  });
  EXPECT_TRUE(answered_synchronously);
}

TEST(Arp, ConcurrentResolversShareOneProbe) {
  ArpFixture f;
  int answers = 0;
  for (int i = 0; i < 5; ++i) {
    f.a.arp_resolve(f.b.ip(), [&](std::optional<net::MacAddress> mac) {
      if (mac) ++answers;
    });
  }
  f.sim.run();
  EXPECT_EQ(answers, 5);
  // One request on the wire (plus the reply): tx = 1 req; b tx = 1 reply.
  EXPECT_EQ(f.a.stats().tx_packets, 1u);
}

TEST(Arp, UnresolvableTimesOutWithRetries) {
  ArpFixture f;
  std::optional<std::optional<net::MacAddress>> result;
  f.a.arp_resolve(net::Ipv4Address::from_id(99),
                  [&](std::optional<net::MacAddress> mac) { result = mac; });
  f.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->has_value());
  EXPECT_EQ(f.a.stats().tx_packets, 3u);  // three tries
}

TEST(Arp, ResolvesThroughCentral3Combiner) {
  // The broadcast request is hubbed to all replicas, flooded by each,
  // majority-voted at the far edge, and released once; the unicast reply
  // comes back the same way.
  topo::Figure3Topology topo(
      scenario::make_options(scenario::ScenarioKind::kCentral3, 5));
  std::optional<net::MacAddress> answer;
  topo.h1().arp_resolve(topo.h2().ip(),
                        [&](std::optional<net::MacAddress> mac) {
                          answer = mac;
                        });
  topo.simulator().run_for(sim::Duration::milliseconds(100));
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(*answer, topo.h2().mac());
}

TEST(Arp, ResolvesThroughLinespeedPath) {
  topo::Figure3Topology topo(
      scenario::make_options(scenario::ScenarioKind::kLinespeed, 5));
  std::optional<net::MacAddress> answer;
  topo.h1().arp_resolve(topo.h2().ip(),
                        [&](std::optional<net::MacAddress> mac) {
                          answer = mac;
                        });
  topo.simulator().run_for(sim::Duration::milliseconds(100));
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(*answer, topo.h2().mac());
}

}  // namespace
}  // namespace netco::host
