// End-to-end property sweep: random combinations of §II attacks on a
// random minority of replicas must never break the combiner guarantees.
//
// For every seed: build a Fig. 3 Central topology (k ∈ {3,5}), install a
// randomly chosen behaviour (drop / corrupt / retag / mirror / reroute) on
// each of floor((k-1)/2) randomly chosen replicas, run ping + a UDP burst,
// and assert:
//   G1  all echo cycles complete (availability);
//   G2  no corrupted packet reaches a host (integrity);
//   G3  no duplicate deliveries (exactly-once);
//   G4  no stray frames at hosts (containment).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "adversary/behaviors.h"
#include "common/rng.h"
#include "host/ping.h"
#include "host/udp_app.h"
#include "scenario/scenarios.h"
#include "topo/figure3.h"

namespace netco {
namespace {

std::unique_ptr<device::DatapathInterceptor> random_attack(
    Rng& rng, topo::Figure3Topology& topo, std::size_t replica_index) {
  using adversary::match_all;
  const auto& combiner = topo.combiner();
  switch (rng.uniform_u64(5)) {
    case 0:
      return std::make_unique<adversary::DropBehavior>(match_all());
    case 1:
      return std::make_unique<adversary::ModifyBehavior>(
          match_all(), adversary::ModifyBehavior::corrupt_payload());
    case 2:
      return std::make_unique<adversary::ModifyBehavior>(
          match_all(), adversary::ModifyBehavior::retag_vlan(
                           static_cast<std::uint16_t>(rng.uniform_u64(4094) + 1)));
    case 3:
      return std::make_unique<adversary::MirrorBehavior>(
          match_all(),
          combiner.replica_edge_port[replica_index][rng.uniform_u64(2)]);
    default:
      return std::make_unique<adversary::RerouteBehavior>(
          match_all(),
          combiner.replica_edge_port[replica_index][rng.uniform_u64(2)]);
  }
}

struct E2eParam {
  int k;
  std::uint64_t seed;
};

class RandomAdversary : public ::testing::TestWithParam<E2eParam> {};

TEST_P(RandomAdversary, GuaranteesHoldUnderMinorityAttack) {
  const auto param = GetParam();
  Rng rng(param.seed);
  topo::Figure3Topology topo(scenario::make_options(
      param.k == 5 ? scenario::ScenarioKind::kCentral5
                   : scenario::ScenarioKind::kCentral3,
      param.seed));

  // Attack floor((k-1)/2) distinct replicas with random behaviours.
  const int attackers = (param.k - 1) / 2;
  std::vector<std::unique_ptr<device::DatapathInterceptor>> attacks;
  std::vector<std::size_t> victims;
  while (victims.size() < static_cast<std::size_t>(attackers)) {
    const auto candidate =
        static_cast<std::size_t>(rng.uniform_u64(static_cast<std::uint64_t>(param.k)));
    if (std::find(victims.begin(), victims.end(), candidate) != victims.end())
      continue;
    victims.push_back(candidate);
    attacks.push_back(random_attack(rng, topo, candidate));
    topo.combiner().replicas[candidate]->set_interceptor(attacks.back().get());
  }

  // G1: availability under ping.
  host::PingConfig ping_config;
  ping_config.dst_mac = topo.h2().mac();
  ping_config.dst_ip = topo.h2().ip();
  ping_config.count = 15;
  ping_config.interval = sim::Duration::milliseconds(2);
  ping_config.timeout = sim::Duration::milliseconds(200);
  host::IcmpPinger pinger(topo.h1(), ping_config);
  pinger.start();
  while (!pinger.finished() && topo.simulator().now().sec() < 3.0) {
    topo.simulator().run_for(sim::Duration::milliseconds(10));
  }
  const auto ping = pinger.report();
  EXPECT_EQ(ping.received, 15) << "k=" << param.k << " seed=" << param.seed;
  EXPECT_EQ(ping.duplicates, 0);  // G3 for ICMP

  // G1–G3 under a UDP burst.
  host::UdpSenderConfig udp_config;
  udp_config.dst_mac = topo.h2().mac();
  udp_config.dst_ip = topo.h2().ip();
  udp_config.rate = DataRate::megabits_per_sec(40);
  host::UdpSender sender(topo.h1(), udp_config);
  host::UdpSink sink(topo.h2(), udp_config.dst_port);
  sender.start();
  topo.simulator().run_for(sim::Duration::milliseconds(200));
  sender.stop();
  topo.simulator().run_for(sim::Duration::milliseconds(50));
  const auto report = sink.report();
  EXPECT_LT(report.loss_rate, 0.01);
  EXPECT_EQ(report.duplicates, 0u);

  // G2: integrity — no corrupted frame survived to a host.
  EXPECT_EQ(topo.h1().stats().rx_bad_checksum, 0u);
  EXPECT_EQ(topo.h2().stats().rx_bad_checksum, 0u);
  // G4: containment — no stray frames.
  EXPECT_EQ(topo.h1().stats().rx_stray, 0u);
  EXPECT_EQ(topo.h2().stats().rx_stray, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomAdversary,
    ::testing::Values(E2eParam{3, 11}, E2eParam{3, 12}, E2eParam{3, 13},
                      E2eParam{3, 14}, E2eParam{3, 15}, E2eParam{5, 21},
                      E2eParam{5, 22}, E2eParam{5, 23}, E2eParam{5, 24},
                      E2eParam{5, 25}),
    [](const ::testing::TestParamInfo<E2eParam>& pinfo) {
      return "k" + std::to_string(pinfo.param.k) + "_seed" +
             std::to_string(pinfo.param.seed);
    });

}  // namespace
}  // namespace netco
