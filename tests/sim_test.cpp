// Unit tests for the discrete-event simulator.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace netco::sim {
namespace {

TEST(Time, DurationArithmetic) {
  EXPECT_EQ(Duration::milliseconds(1).ns(), 1'000'000);
  EXPECT_EQ((Duration::seconds(1) + Duration::milliseconds(500)).ms(), 1500.0);
  EXPECT_EQ((Duration::microseconds(10) - Duration::microseconds(4)).us(), 6.0);
  EXPECT_EQ((Duration::milliseconds(2) * 3).ms(), 6.0);
  EXPECT_EQ((Duration::milliseconds(9) / 3).ms(), 3.0);
  EXPECT_EQ((-Duration::seconds(1)).sec(), -1.0);
}

TEST(Time, SecondsFractionalRounds) {
  EXPECT_EQ(Duration::seconds_f(0.5).ms(), 500.0);
  EXPECT_EQ(Duration::seconds_f(1e-9).ns(), 1);
}

TEST(Time, TimePointArithmetic) {
  const TimePoint t = TimePoint::origin() + Duration::seconds(2);
  EXPECT_EQ(t.sec(), 2.0);
  EXPECT_EQ((t - TimePoint::origin()).sec(), 2.0);
  EXPECT_EQ((t - Duration::seconds(1)).sec(), 1.0);
}

TEST(Time, TransmissionTimeExact) {
  // 1500 bytes at 1 Gb/s = 12 µs.
  EXPECT_EQ(transmission_time(DataRate::gigabits_per_sec(1), 1500).us(), 12.0);
}

TEST(Time, TransmissionTimeRoundsUpNonZero) {
  // 1 byte at 10 Gb/s = 0.8 ns → rounds to 1 ns, never 0.
  EXPECT_EQ(transmission_time(DataRate::gigabits_per_sec(10), 1).ns(), 1);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::milliseconds(3), [&] { order.push_back(3); });
  sim.schedule_after(Duration::milliseconds(1), [&] { order.push_back(1); });
  sim.schedule_after(Duration::milliseconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().ns(), Duration::milliseconds(3).ns());
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(Duration::milliseconds(1), [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::milliseconds(1), [&] {
    ++fired;
    sim.schedule_after(Duration::milliseconds(1), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now().ns(), Duration::milliseconds(2).ns());
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::milliseconds(1), [&] { ++fired; });
  sim.schedule_after(Duration::milliseconds(10), [&] { ++fired; });
  sim.run_until(TimePoint::origin() + Duration::milliseconds(5));
  EXPECT_EQ(fired, 1);
  // Clock advances to exactly the deadline even with no event there.
  EXPECT_EQ(sim.now().ns(), Duration::milliseconds(5).ns());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelledEventDoesNotRun) {
  Simulator sim;
  bool ran = false;
  EventHandle handle =
      sim.schedule_after(Duration::milliseconds(1), [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  int fired = 0;
  EventHandle handle =
      sim.schedule_after(Duration::milliseconds(1), [&] { ++fired; });
  sim.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash or affect anything
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, StopBreaksRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::milliseconds(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_after(Duration::milliseconds(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i)
    sim.schedule_after(Duration::milliseconds(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, EventsPendingExcludesCancelledTombstones) {
  Simulator sim;
  EventHandle a = sim.schedule_after(Duration::milliseconds(1), [] {});
  EventHandle b = sim.schedule_after(Duration::milliseconds(2), [] {});
  sim.schedule_after(Duration::milliseconds(3), [] {});
  EXPECT_EQ(sim.events_pending(), 3u);
  EXPECT_EQ(sim.queue_size(), 3u);

  b.cancel();
  EXPECT_EQ(sim.events_pending(), 2u) << "tombstone counted as pending";
  EXPECT_EQ(sim.queue_size(), 3u) << "tombstone purged eagerly";
  b.cancel();  // idempotent: must not double-decrement
  EXPECT_EQ(sim.events_pending(), 2u);

  a.cancel();
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 1u);
  EXPECT_EQ(sim.events_pending(), 0u);
  EXPECT_EQ(sim.queue_size(), 0u);
}

TEST(Simulator, TombstoneRunsPurgeLazilyAtPop) {
  Simulator sim;
  // A run of cancelled events ahead of the deadline plus one live event
  // far beyond it: stepping to the deadline must drain the tombstones
  // even though the live event stays queued.
  std::vector<EventHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(
        sim.schedule_after(Duration::milliseconds(1 + i), [] {}));
  }
  bool late_ran = false;
  sim.schedule_after(Duration::seconds(1), [&] { late_ran = true; });
  for (auto& handle : handles) handle.cancel();

  sim.run_until(TimePoint::origin() + Duration::milliseconds(100));
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(sim.events_pending(), 1u);
  EXPECT_EQ(sim.queue_size(), 1u) << "tombstone run not purged at pop";
  sim.run();
  EXPECT_TRUE(late_ran);
}

TEST(Simulator, SlotReuseKeepsOldHandlesDead) {
  Simulator sim;
  bool first_ran = false;
  bool second_ran = false;
  EventHandle first =
      sim.schedule_after(Duration::milliseconds(1), [&] { first_ran = true; });
  first.cancel();
  sim.run();  // pops the tombstone, recycling its slot
  // The recycled slot now carries a later generation.
  EventHandle second =
      sim.schedule_after(Duration::milliseconds(1), [&] { second_ran = true; });
  EXPECT_FALSE(first.pending());
  EXPECT_TRUE(second.pending());
  first.cancel();  // must not cancel the new occupant of the slot
  EXPECT_TRUE(second.pending());
  sim.run();
  EXPECT_FALSE(first_ran);
  EXPECT_TRUE(second_ran);
}

TEST(Simulator, CancelAfterSimulatorDeathIsNoop) {
  EventHandle handle;
  {
    Simulator sim;
    handle = sim.schedule_after(Duration::milliseconds(1), [] {});
    EXPECT_TRUE(handle.pending());
  }
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash
}

TEST(Simulator, MoveOnlyCapturesAreSupported) {
  Simulator sim;
  auto value = std::make_unique<int>(41);
  int observed = 0;
  sim.schedule_after(Duration::milliseconds(1),
                     [v = std::move(value)] { });
  sim.schedule_after(Duration::milliseconds(2),
                     [p = std::make_unique<int>(7), &observed] {
                       observed = *p;
                     });
  sim.run();
  EXPECT_EQ(observed, 7);
}

TEST(Simulator, OversizedCapturesFallBackToHeap) {
  Simulator sim;
  // A capture larger than Callback's inline budget must still work.
  std::array<std::uint64_t, 16> big{};
  big.fill(3);
  static_assert(sizeof(big) > Callback::kInlineBytes);
  std::uint64_t sum = 0;
  sim.schedule_after(Duration::milliseconds(1), [big, &sum] {
    for (const auto v : big) sum += v;
  });
  sim.run();
  EXPECT_EQ(sum, 48u);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  bool ran = false;
  sim.schedule_after(Duration::zero(), [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now().ns(), 0);
}

TEST(Simulator, CancelStormKeepsQueueBounded) {
  Simulator sim;
  // Probe-churn workload: a core of long-lived events, then thousands of
  // schedule+cancel cycles against far-future deadlines (health probes
  // being rewired). Without threshold compaction the raw heap grows with
  // the total cancel count; with it, queue_size() must stay within a
  // constant factor of the live population.
  std::vector<EventHandle> live;
  for (int i = 0; i < 32; ++i) {
    live.push_back(sim.schedule_after(Duration::seconds(3600 + i), [] {}));
  }
  for (int round = 0; round < 200; ++round) {
    std::vector<EventHandle> batch;
    for (int i = 0; i < 64; ++i) {
      batch.push_back(sim.schedule_after(Duration::seconds(60 + i), [] {}));
    }
    for (auto& handle : batch) handle.cancel();
  }
  EXPECT_GE(sim.compactions(), 1u) << "cancel storm never tripped compaction";
  EXPECT_EQ(sim.events_pending(), 32u);
  // Bound: live population doubled, plus the engagement floor.
  EXPECT_LE(sim.queue_size(), 2 * sim.events_pending() + 64)
      << "tombstone debt grew without bound";
}

TEST(Simulator, CompactionPreservesExecutionOrder) {
  // The same interleaved schedule/cancel program with the storm that
  // forces compactions must execute surviving events in the identical
  // (time, scheduling order) sequence as a quiet run.
  const auto program = [](Simulator& sim, bool storm) {
    std::vector<int> order;
    std::vector<EventHandle> doomed;
    for (int i = 0; i < 40; ++i) {
      // Same-instant pairs to exercise the seq tie-break across rebuilds.
      sim.schedule_after(Duration::milliseconds(1 + i / 2),
                         [&order, i] { order.push_back(i); });
      doomed.push_back(
          sim.schedule_after(Duration::milliseconds(5 + i), [] {}));
    }
    for (auto& handle : doomed) handle.cancel();
    if (storm) {
      for (int round = 0; round < 50; ++round) {
        std::vector<EventHandle> batch;
        for (int i = 0; i < 80; ++i) {
          batch.push_back(sim.schedule_after(Duration::seconds(9), [] {}));
        }
        for (auto& handle : batch) handle.cancel();
      }
    }
    sim.run();
    return std::make_pair(order, sim.compactions());
  };
  Simulator quiet;
  Simulator stormy;
  const auto [quiet_order, quiet_compactions] = program(quiet, false);
  const auto [storm_order, storm_compactions] = program(stormy, true);
  EXPECT_EQ(quiet_compactions, 0u);
  EXPECT_GE(storm_compactions, 1u);
  EXPECT_EQ(quiet_order, storm_order)
      << "heap rebuild perturbed the (at, seq) pop order";
}

}  // namespace
}  // namespace netco::sim
