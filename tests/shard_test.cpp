// ShardedSimulator unit tests: conservative synchronization with
// synthetic cells — determinism across worker counts, canonical arrival
// ordering, channel overflow, and the finished-receiver drop rule.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/shard.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace netco::sim {
namespace {

/// What one cell observed, in execution order: its own ticks (positive
/// cell id) and message receipts (encoded as -(sender id + 1)), each with
/// the local simulator time.
struct CellLog {
  std::vector<std::pair<std::int64_t, std::int64_t>> events;
};

/// A cell that ticks every `period`, optionally posting a message to an
/// out-channel on each tick, until `end`. Windows are `window` long.
class TickCell final : public ShardCell {
 public:
  TickCell(std::int64_t id, Duration period, Duration window, TimePoint end,
           CellLog* log, CellLog* peer_log, ShardChannel* out)
      : id_(id),
        period_(period),
        window_(window),
        end_(end),
        log_(log),
        peer_log_(peer_log),
        out_(out) {}

  [[nodiscard]] Simulator& simulator() noexcept override { return sim_; }

  TimePoint start() override {
    schedule_tick();
    cap_ = sim_.now() + window_;
    return cap_;
  }

  TimePoint on_window(TimePoint committed) override {
    // The cap-slicing contract: when neighbors constrained the horizon
    // below our cap, keep asking for the same cap so window boundaries
    // stay on the window grid regardless of how rounds sliced them.
    if (committed < cap_) return cap_;
    if (committed >= end_) return done_marker();
    cap_ = committed + window_;
    return cap_;
  }

 private:
  void schedule_tick() {
    sim_.schedule_after(period_, [this] {
      log_->events.emplace_back(id_, sim_.now().ns());
      if (out_ != nullptr) {
        // Receipt runs on the *receiver's* event loop; the negative id
        // marks "receipt from `sender`" in the receiver's ordered log.
        CellLog* peer = peer_log_;
        const std::int64_t sender = id_;
        const std::int64_t deliver_ns = (sim_.now() + out_->lookahead()).ns();
        out_->post(sim_.now(), sim_.now() + out_->lookahead(),
                   Callback([peer, sender, deliver_ns] {
                     peer->events.emplace_back(-(sender + 1), deliver_ns);
                   }));
      }
      if (sim_.now() < end_) schedule_tick();
    });
  }

  Simulator sim_;
  std::int64_t id_;
  Duration period_;
  Duration window_;
  TimePoint cap_;
  TimePoint end_;
  CellLog* log_;
  CellLog* peer_log_;
  ShardChannel* out_;
};

struct RingRun {
  std::vector<CellLog> logs;
  std::uint64_t rounds = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
};

/// N cells in a ring (i → (i+1) % N), every cell ticking and posting.
RingRun run_ring(std::size_t cells, int workers, Duration lookahead,
                 std::size_t channel_capacity = 4096,
                 Duration window = Duration::milliseconds(2)) {
  RingRun out;
  out.logs.resize(cells);
  ShardedSimulator::Options options;
  options.workers = workers;
  options.channel_capacity = channel_capacity;
  ShardedSimulator sharded(options);
  std::vector<ShardChannel*> ring(cells, nullptr);
  const TimePoint end = TimePoint::from_ns(0) + Duration::milliseconds(20);
  for (std::size_t i = 0; i < cells; ++i) {
    CellLog* log = &out.logs[i];
    CellLog* peer = &out.logs[(i + 1) % cells];
    sharded.add_cell([i, log, peer, &ring, end, window] {
      return std::make_unique<TickCell>(static_cast<std::int64_t>(i),
                                        Duration::microseconds(500), window,
                                        end, log, peer, ring[i]);
    });
  }
  if (cells > 1) {
    for (std::size_t i = 0; i < cells; ++i) {
      ring[i] = &sharded.connect(i, (i + 1) % cells, lookahead);
    }
  }
  sharded.run();
  out.rounds = sharded.rounds();
  out.delivered = sharded.cross_shard_messages();
  out.dropped = sharded.dropped_to_finished();
  return out;
}

TEST(ShardedSimulator, SingleCellRunsItsFullSchedule) {
  const RingRun run = run_ring(1, 1, Duration::milliseconds(1));
  // 20 ms at one tick per 500 µs: ticks at 0.5, 1.0, ..., 20.0 ms.
  EXPECT_EQ(run.logs[0].events.size(), 40u);
  EXPECT_EQ(run.logs[0].events.front().second, 500'000);
  EXPECT_EQ(run.logs[0].events.back().second, 20'000'000);
  EXPECT_EQ(run.delivered, 0u);
  EXPECT_GT(run.rounds, 0u);
}

TEST(ShardedSimulator, RingDeliversAcrossShards) {
  const RingRun run = run_ring(3, 3, Duration::milliseconds(1));
  EXPECT_GT(run.delivered, 0u);
  for (const CellLog& log : run.logs) {
    std::size_t ticks = 0;
    std::size_t receipts = 0;
    for (const auto& event : log.events) {
      (event.first >= 0 ? ticks : receipts)++;
    }
    EXPECT_EQ(ticks, 40u);
    EXPECT_GT(receipts, 0u);
  }
}

TEST(ShardedSimulator, ScheduleIsWorkerCountInvariant) {
  const RingRun one = run_ring(4, 1, Duration::milliseconds(1));
  const RingRun two = run_ring(4, 2, Duration::milliseconds(1));
  const RingRun four = run_ring(4, 4, Duration::milliseconds(1));
  EXPECT_EQ(one.rounds, two.rounds);
  EXPECT_EQ(one.rounds, four.rounds);
  EXPECT_EQ(one.delivered, two.delivered);
  EXPECT_EQ(one.delivered, four.delivered);
  EXPECT_EQ(one.dropped, two.dropped);
  EXPECT_EQ(one.dropped, four.dropped);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(one.logs[i].events, two.logs[i].events) << "cell " << i;
    EXPECT_EQ(one.logs[i].events, four.logs[i].events) << "cell " << i;
  }
}

TEST(ShardedSimulator, WindowSlicingDoesNotChangeTheSchedule) {
  // A window shorter than the lookahead forces many small rounds; the
  // observable schedule must not change, only the round count (the same
  // invariance the soak harness's cap-slicing contract relies on).
  //
  // Caveat the lookahead choice encodes: when a cross-shard arrival and a
  // locally scheduled event share the exact same nanosecond, their order
  // falls to tie-break sequence numbers, which DO depend on when the
  // barrier drained the arrival — so the guarantee is timestamp-order,
  // not tie-order. 1.3 ms against a 500 µs tick grid keeps every
  // timestamp unique, which is what real traffic looks like (and the
  // soak's beacons are order-independent counter bumps regardless).
  const RingRun coarse = run_ring(2, 2, Duration::microseconds(1300), 4096,
                                  Duration::milliseconds(4));
  const RingRun fine = run_ring(2, 2, Duration::microseconds(1300), 4096,
                                Duration::microseconds(250));
  EXPECT_GT(fine.rounds, coarse.rounds);
  EXPECT_EQ(coarse.delivered, fine.delivered);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(coarse.logs[i].events, fine.logs[i].events) << "cell " << i;
  }
}

TEST(ShardedSimulator, ChannelOverflowPreservesEveryMessage) {
  // Capacity 2 (rounded to a tiny ring) with 40 posts per cell per run:
  // most messages take the overflow path, none may be lost or reordered.
  const RingRun tiny = run_ring(2, 2, Duration::milliseconds(1), 2);
  const RingRun big = run_ring(2, 2, Duration::milliseconds(1), 4096);
  EXPECT_EQ(tiny.delivered + tiny.dropped, big.delivered + big.dropped);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(tiny.logs[i].events, big.logs[i].events) << "cell " << i;
  }
}

/// A cell that finishes immediately, so peers posting to it exercise the
/// finished-receiver drop path.
class InertCell final : public ShardCell {
 public:
  [[nodiscard]] Simulator& simulator() noexcept override { return sim_; }
  TimePoint start() override { return done_marker(); }
  TimePoint on_window(TimePoint) override { return done_marker(); }

 private:
  Simulator sim_;
};

TEST(ShardedSimulator, MessagesToFinishedCellsAreDropped) {
  ShardedSimulator sharded({.workers = 2, .channel_capacity = 64});
  CellLog log;
  CellLog sink_log;
  std::vector<ShardChannel*> out(1, nullptr);
  const TimePoint end = TimePoint::from_ns(0) + Duration::milliseconds(5);
  sharded.add_cell([&log, &sink_log, &out, end] {
    return std::make_unique<TickCell>(0, Duration::milliseconds(1),
                                      Duration::milliseconds(1), end, &log,
                                      &sink_log, out[0]);
  });
  sharded.add_cell([] { return std::make_unique<InertCell>(); });
  out[0] = &sharded.connect(0, 1, Duration::milliseconds(1));
  sharded.run();
  EXPECT_EQ(log.events.size(), 5u);
  EXPECT_EQ(sharded.cross_shard_messages(), 0u);
  EXPECT_EQ(sharded.dropped_to_finished(), 5u);
  EXPECT_TRUE(sink_log.events.empty());
}

TEST(ShardedSimulator, CommittedReportsFinalTimes) {
  ShardedSimulator sharded({.workers = 1});
  CellLog log;
  const TimePoint end = TimePoint::from_ns(0) + Duration::milliseconds(10);
  sharded.add_cell([&log, end] {
    return std::make_unique<TickCell>(0, Duration::milliseconds(1),
                                      Duration::milliseconds(2), end, &log,
                                      &log, nullptr);
  });
  sharded.run();
  EXPECT_GE(sharded.committed(0), end);
}

}  // namespace
}  // namespace netco::sim
