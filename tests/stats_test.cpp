// Tests for the stats helpers (summary statistics, table printer) and the
// metrics histogram quantile estimator.
#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace netco::stats {
namespace {

TEST(Summary, EmptyInputAllZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summary, SingleSample) {
  const auto s = summarize({7.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_EQ(s.mean, 7.0);
  EXPECT_EQ(s.min, 7.0);
  EXPECT_EQ(s.max, 7.0);
  EXPECT_EQ(s.p50, 7.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summary, KnownValues) {
  // n = 5, hand-computed: mean 3; sample variance Σ(x−3)²/(n−1) = 10/4.
  const auto s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.mean, 3.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  // p95 rank = 0.95·4 = 3.8 → between 4 and 5, 80% of the way.
  EXPECT_NEAR(s.p95, 4.8, 1e-12);
}

TEST(Summary, TwoSamples) {
  // n = 2, hand-computed: mean 2; sample variance (1+1)/1 = 2; the median
  // interpolates halfway between the two order statistics.
  const auto s = summarize({3.0, 1.0});
  EXPECT_EQ(s.n, 2u);
  EXPECT_EQ(s.mean, 2.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(s.p50, 2.0, 1e-12);
  // p95 rank = 0.95·1 = 0.95 → 1 + 0.95·(3−1).
  EXPECT_NEAR(s.p95, 2.9, 1e-12);
}

TEST(Summary, PercentileInterpolatesBetweenRanks) {
  // {10, 20, 30, 40}: p50 rank = 0.5·3 = 1.5 → midway between 20 and 30.
  const auto s = summarize({40.0, 10.0, 30.0, 20.0});
  EXPECT_NEAR(s.p50, 25.0, 1e-12);
  // Quantile endpoints are exact order statistics.
  std::vector<double> sorted{10.0, 20.0, 30.0, 40.0};
  EXPECT_EQ(sorted_quantile(sorted, 0.0), 10.0);
  EXPECT_EQ(sorted_quantile(sorted, 1.0), 40.0);
}

TEST(Summary, UnsortedInputHandled) {
  const auto s = summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.p50, 3.0);
}

TEST(Summary, PercentilesMonotone) {
  std::vector<double> samples;
  for (int i = 0; i < 100; ++i) samples.push_back(static_cast<double>(i));
  const auto s = summarize(samples);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.max);
  EXPECT_NEAR(s.p50, 50.0, 1.0);
  EXPECT_NEAR(s.p95, 95.0, 1.0);
}

// --- obs::Histogram quantiles ------------------------------------------------

TEST(HistogramQuantile, EmptyIsZero) {
  obs::Histogram h({1.0, 10.0, 100.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramQuantile, SingleBucketInterpolatesWithinObservedRange) {
  obs::Histogram h({100.0});
  h.observe(10.0);
  h.observe(20.0);
  h.observe(30.0);
  h.observe(40.0);
  // All samples in bucket [min=10, bound=100] clamped to max=40; every
  // quantile stays inside the observed range.
  EXPECT_GE(h.quantile(0.0), 10.0);
  EXPECT_LE(h.quantile(1.0), 40.0);
  EXPECT_GT(h.quantile(0.9), h.quantile(0.1));
}

TEST(HistogramQuantile, MassSplitAcrossBuckets) {
  obs::Histogram h({10.0, 20.0});
  // 10 samples ≤ 10, 10 samples in (10, 20] → p50 lands at the boundary
  // between the two buckets, p95 deep inside the second.
  for (int i = 1; i <= 10; ++i) h.observe(static_cast<double>(i));
  for (int i = 11; i <= 20; ++i) h.observe(static_cast<double>(i));
  EXPECT_NEAR(h.quantile(0.5), 10.0, 1.0);
  EXPECT_GT(h.quantile(0.95), 15.0);
  EXPECT_LE(h.quantile(0.95), 20.0);
  EXPECT_LE(h.quantile(1.0), h.max());
  // Monotone in q.
  EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
}

TEST(HistogramQuantile, OverflowBucketClampsToMax) {
  obs::Histogram h({10.0});
  h.observe(5.0);
  h.observe(1000.0);  // overflow bucket
  EXPECT_EQ(h.max(), 1000.0);
  EXPECT_LE(h.quantile(0.99), 1000.0);
  EXPECT_GE(h.quantile(0.99), 5.0);
}

TEST(HistogramQuantile, SummaryStatsTrackObservations) {
  obs::Histogram h(obs::default_latency_buckets_us());
  h.observe(3.0);
  h.observe(7.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), 10.0);
  EXPECT_EQ(h.min(), 3.0);
  EXPECT_EQ(h.max(), 7.0);
  EXPECT_EQ(h.mean(), 5.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(MetricsRegistry, StableAddressesAndCanonicalJson) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("b.second");
  obs::Counter& b = registry.counter("a.first");
  a.inc(2);
  b.inc(1);
  // Same name → same instrument.
  EXPECT_EQ(&registry.counter("b.second"), &a);
  // Keys render sorted regardless of registration order.
  const auto json = registry.to_json();
  EXPECT_LT(json.find("a.first"), json.find("b.second"));
  EXPECT_NE(json.find("\"a.first\":1"), std::string::npos);
  EXPECT_NE(json.find("\"b.second\":2"), std::string::npos);
  registry.reset();
  EXPECT_EQ(registry.counter("b.second").value(), 0u);
  EXPECT_EQ(&registry.counter("b.second"), &a);  // reset preserves identity
}

TEST(Table, RendersAlignedColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"short", "1"});
  table.add_row({"a-much-longer-name", "22"});
  const auto text = table.render();
  EXPECT_NE(text.find("| name "), std::string::npos);
  EXPECT_NE(text.find("a-much-longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("|---"), std::string::npos);
  // Every row starts with the delimiter.
  EXPECT_EQ(text.front(), '|');
}

TEST(Table, MissingCellsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.add_row({"x"});
  const auto text = table.render();
  // Renders without crashing; the row has all three delimiters.
  int pipes = 0;
  const auto last_line_start = text.rfind("| x");
  for (std::size_t i = last_line_start; i < text.size(); ++i)
    if (text[i] == '|') ++pipes;
  EXPECT_EQ(pipes, 4);  // leading + 3 columns' trailing
}

TEST(Table, NumFormatsDigits) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(3.0, 0), "3");
  EXPECT_EQ(TablePrinter::num(1234.5, 1), "1234.5");
}

}  // namespace
}  // namespace netco::stats
