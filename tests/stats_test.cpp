// Tests for the stats helpers (summary statistics, table printer).
#include <gtest/gtest.h>

#include "stats/summary.h"
#include "stats/table.h"

namespace netco::stats {
namespace {

TEST(Summary, EmptyInputAllZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summary, SingleSample) {
  const auto s = summarize({7.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_EQ(s.mean, 7.0);
  EXPECT_EQ(s.min, 7.0);
  EXPECT_EQ(s.max, 7.0);
  EXPECT_EQ(s.p50, 7.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summary, KnownValues) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.mean, 3.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(Summary, UnsortedInputHandled) {
  const auto s = summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.p50, 3.0);
}

TEST(Summary, PercentilesMonotone) {
  std::vector<double> samples;
  for (int i = 0; i < 100; ++i) samples.push_back(static_cast<double>(i));
  const auto s = summarize(samples);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.max);
  EXPECT_NEAR(s.p50, 50.0, 1.0);
  EXPECT_NEAR(s.p95, 95.0, 1.0);
}

TEST(Table, RendersAlignedColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"short", "1"});
  table.add_row({"a-much-longer-name", "22"});
  const auto text = table.render();
  EXPECT_NE(text.find("| name "), std::string::npos);
  EXPECT_NE(text.find("a-much-longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("|---"), std::string::npos);
  // Every row starts with the delimiter.
  EXPECT_EQ(text.front(), '|');
}

TEST(Table, MissingCellsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.add_row({"x"});
  const auto text = table.render();
  // Renders without crashing; the row has all three delimiters.
  int pipes = 0;
  const auto last_line_start = text.rfind("| x");
  for (std::size_t i = last_line_start; i < text.size(); ++i)
    if (text[i] == '|') ++pipes;
  EXPECT_EQ(pipes, 4);  // leading + 3 columns' trailing
}

TEST(Table, NumFormatsDigits) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(3.0, 0), "3");
  EXPECT_EQ(TablePrinter::num(1234.5, 1), "1234.5");
}

}  // namespace
}  // namespace netco::stats
