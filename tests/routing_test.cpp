// Tests for the RIP-v2 routing subsystem (src/routing): the announcement
// wire codec, the adversary's in-place metric rewriter, the RipSpeaker
// protocol machine (Bellman–Ford relaxation, split horizon with poisoned
// reverse, timeout → GC lifecycle, triggered updates), and the timer
// discipline — every speaker timer lives on the sim::TimerWheel, so a
// steady-state routing plane costs the simulator's heap exactly one
// anchor event.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "device/network.h"
#include "iproute/legacy_router.h"
#include "net/headers.h"
#include "net/packet.h"
#include "routing/rip.h"
#include "routing/rip_msg.h"
#include "sim/simulator.h"

namespace netco::routing {
namespace {

net::Ipv4Address ip(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                    std::uint8_t d) {
  return net::Ipv4Address::from_octets(a, b, c, d);
}

RipMessage sample_message() {
  RipMessage message;
  message.seq = 0xDEADBEEF;
  message.entries.push_back(RipEntry{ip(10, 1, 0, 0), 24, 1});
  message.entries.push_back(RipEntry{ip(10, 2, 0, 0), 16, 7});
  message.entries.push_back(RipEntry{ip(10, 0, 1, 0), 30, kRipInfinity});
  return message;
}

/// A fully checksummed RIP announcement datagram around `message`.
net::Packet rip_datagram(const RipMessage& message, net::Ipv4Address src,
                         net::Ipv4Address dst, net::MacAddress src_mac,
                         net::MacAddress dst_mac) {
  return net::build_udp(
      net::EthernetHeader{.dst = dst_mac, .src = src_mac}, std::nullopt,
      net::Ipv4Header{.src = src, .dst = dst, .proto = net::IpProto::Udp,
                      .ttl = 2},
      net::UdpHeader{.src_port = kRipPort, .dst_port = kRipPort},
      serialize(message));
}

// --- wire codec --------------------------------------------------------------

TEST(RipMsg, SerializeParseRoundTrip) {
  const RipMessage message = sample_message();
  const std::vector<std::byte> wire = serialize(message);
  EXPECT_EQ(wire.size(),
            kRipHeaderBytes + message.entries.size() * kRipEntryBytes);
  const auto parsed = parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, message);
}

TEST(RipMsg, ParseRejectsTruncatedAndGarbage) {
  EXPECT_FALSE(parse({}).has_value());
  const std::vector<std::byte> wire = serialize(sample_message());
  // Truncated header.
  EXPECT_FALSE(
      parse(std::span(wire).subspan(0, kRipHeaderBytes - 1)).has_value());
  // Truncated entry tail.
  EXPECT_FALSE(parse(std::span(wire).subspan(0, wire.size() - 1)).has_value());
  // Wrong version / command.
  std::vector<std::byte> bad_version = wire;
  bad_version[1] = std::byte{1};
  EXPECT_FALSE(parse(bad_version).has_value());
  std::vector<std::byte> bad_command = wire;
  bad_command[0] = std::byte{9};
  EXPECT_FALSE(parse(bad_command).has_value());
}

TEST(RipMsg, IsRipDatagramSelectsByPort) {
  const net::Packet announcement =
      rip_datagram(sample_message(), ip(10, 0, 1, 1), ip(10, 0, 1, 2),
                   net::MacAddress::from_id(1), net::MacAddress::from_id(2));
  const auto parsed = net::parse_packet(announcement);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(is_rip_datagram(*parsed));

  std::vector<std::byte> payload(8, std::byte{0});
  const net::Packet plain = net::build_udp(
      net::EthernetHeader{.dst = net::MacAddress::from_id(2),
                          .src = net::MacAddress::from_id(1)},
      std::nullopt, net::Ipv4Header{.src = ip(10, 0, 1, 1),
                                    .dst = ip(10, 0, 1, 2)},
      net::UdpHeader{.src_port = 9, .dst_port = 5001}, payload);
  const auto plain_parsed = net::parse_packet(plain);
  ASSERT_TRUE(plain_parsed.has_value());
  EXPECT_FALSE(is_rip_datagram(*plain_parsed));
}

// --- the adversary's rewriter ------------------------------------------------

TEST(RipMsg, RewriteMetricsPoisonsInPlaceWithValidChecksums) {
  net::Packet packet =
      rip_datagram(sample_message(), ip(10, 0, 1, 1), ip(10, 0, 1, 2),
                   net::MacAddress::from_id(1), net::MacAddress::from_id(2));
  auto parsed = net::parse_packet(packet);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(rewrite_metrics(packet, *parsed,
                              [](std::uint8_t) -> std::uint8_t { return 0; }));
  // The lie survives a checksum-verifying receiver.
  EXPECT_TRUE(net::checksums_valid(packet));
  const auto reparsed = net::parse_packet(packet);
  ASSERT_TRUE(reparsed.has_value());
  const auto message = parse(packet.slice(
      reparsed->payload_offset, packet.size() - reparsed->payload_offset));
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->seq, 0xDEADBEEFu);  // only the metrics moved
  ASSERT_EQ(message->entries.size(), 3u);
  for (const RipEntry& entry : message->entries) {
    EXPECT_EQ(entry.metric, 0);
  }
}

TEST(RipMsg, RewriteMetricsLeavesNonRipPacketsAlone) {
  std::vector<std::byte> payload(16, std::byte{0x42});
  net::Packet packet = net::build_udp(
      net::EthernetHeader{.dst = net::MacAddress::from_id(2),
                          .src = net::MacAddress::from_id(1)},
      std::nullopt, net::Ipv4Header{.src = ip(10, 0, 1, 1),
                                    .dst = ip(10, 0, 1, 2)},
      net::UdpHeader{.src_port = 9, .dst_port = 5001}, payload);
  const net::Packet before = packet;
  const auto parsed = net::parse_packet(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(rewrite_metrics(packet, *parsed,
                               [](std::uint8_t) -> std::uint8_t { return 0; }));
  EXPECT_EQ(packet, before);
}

TEST(RipMsg, RewriteMetricsIsDeterministicAcrossLiars) {
  // Two liars applying the same pure function to identical copies emit
  // bit-identical lies — the precondition for two liars out-voting a k=3
  // quorum (and for one liar being out-voted by two honest copies).
  net::Packet a =
      rip_datagram(sample_message(), ip(10, 0, 1, 1), ip(10, 0, 1, 2),
                   net::MacAddress::from_id(1), net::MacAddress::from_id(2));
  net::Packet b = a;
  const auto pa = net::parse_packet(a);
  const auto pb = net::parse_packet(b);
  ASSERT_TRUE(pa.has_value() && pb.has_value());
  const auto inflate = [](std::uint8_t m) -> std::uint8_t {
    return static_cast<std::uint8_t>(m + 8 > kRipInfinity ? kRipInfinity
                                                          : m + 8);
  };
  ASSERT_TRUE(rewrite_metrics(a, *pa, inflate));
  ASSERT_TRUE(rewrite_metrics(b, *pb, inflate));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.content_hash(), b.content_hash());
}

// --- RipSpeaker over real links ----------------------------------------------

/// Two routers on one /30, each with a stub /24 behind it:
///
///   [10.1.0.0/24] — RA (10.0.1.1) ——— (10.0.1.2) RB — [10.2.0.0/24]
struct TwoSpeakerFixture {
  sim::Simulator sim;
  device::Network net{sim};
  iproute::LegacyRouter& ra;
  iproute::LegacyRouter& rb;
  RipSpeaker speaker_a;
  RipSpeaker speaker_b;

  explicit TwoSpeakerFixture(RipConfig config = {})
      : ra(net.add_node<iproute::LegacyRouter>("ra")),
        rb(net.add_node<iproute::LegacyRouter>("rb")),
        speaker_a((add_interfaces(), ra), config),
        speaker_b(rb, config) {
    net.connect(ra, rb);  // port 0 on both
    speaker_a.add_connected(ip(10, 0, 1, 0), 30, 0);
    speaker_a.add_connected(ip(10, 1, 0, 0), 24, 0);
    speaker_a.add_neighbor(RipNeighbor{
        .port = 0, .ip = ip(10, 0, 1, 2), .mac = rb_mac()});
    speaker_b.add_connected(ip(10, 0, 1, 0), 30, 0);
    speaker_b.add_connected(ip(10, 2, 0, 0), 24, 0);
    speaker_b.add_neighbor(RipNeighbor{
        .port = 0, .ip = ip(10, 0, 1, 1), .mac = ra_mac()});
  }

  void add_interfaces() {
    ra.add_interface(
        iproute::Interface{.mac = ra_mac(), .ip = ip(10, 0, 1, 1)});
    rb.add_interface(
        iproute::Interface{.mac = rb_mac(), .ip = ip(10, 0, 1, 2)});
  }

  static net::MacAddress ra_mac() { return net::MacAddress::from_id(0xA0); }
  static net::MacAddress rb_mac() { return net::MacAddress::from_id(0xB0); }

  void start_and_converge() {
    speaker_a.start();
    speaker_b.start();
    // Two update periods comfortably cover first_update + triggered
    // exchange in both directions.
    sim.run_until(sim.now() + sim::Duration::milliseconds(500));
  }
};

TEST(RipSpeaker, TwoSpeakersExchangeAndInstallRoutes) {
  TwoSpeakerFixture f;
  f.start_and_converge();

  const auto at_b = f.speaker_b.route(ip(10, 1, 0, 0), 24);
  ASSERT_TRUE(at_b.has_value());
  EXPECT_EQ(at_b->metric, 2);  // stub is connected (1) + one hop
  EXPECT_EQ(at_b->next_hop, ip(10, 0, 1, 1));
  EXPECT_FALSE(at_b->connected);

  const auto at_a = f.speaker_a.route(ip(10, 2, 0, 0), 24);
  ASSERT_TRUE(at_a.has_value());
  EXPECT_EQ(at_a->metric, 2);
  EXPECT_EQ(at_a->next_hop, ip(10, 0, 1, 2));

  // Learned routes reach the forwarding plane.
  const auto hop = f.rb.fib().lookup(ip(10, 1, 0, 77));
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->port, 0u);
  EXPECT_EQ(hop->next_mac, TwoSpeakerFixture::ra_mac());

  EXPECT_GT(f.speaker_a.stats().updates_sent, 0u);
  EXPECT_GT(f.speaker_a.stats().updates_received, 0u);
  EXPECT_GT(f.speaker_b.stats().triggered_updates, 0u);
  EXPECT_EQ(f.speaker_a.stats().malformed_dropped, 0u);
}

TEST(RipSpeaker, SplitHorizonAdvertisesPoisonedReverse) {
  TwoSpeakerFixture f;
  f.start_and_converge();

  // Capture RB's next announcement toward RA: the route RB learned *from*
  // RA (10.1.0.0/24) must come back poisoned at metric 16, while RB's own
  // stub stays at its real metric.
  std::optional<RipMessage> seen;
  f.speaker_b.set_transport([&](device::PortIndex, net::Packet packet) {
    const auto parsed = net::parse_packet(packet);
    ASSERT_TRUE(parsed.has_value());
    seen = parse(packet.slice(parsed->payload_offset,
                              packet.size() - parsed->payload_offset));
  });
  f.sim.run_until(f.sim.now() + sim::Duration::milliseconds(250));
  ASSERT_TRUE(seen.has_value());

  bool learned_seen = false;
  bool stub_seen = false;
  for (const RipEntry& entry : seen->entries) {
    if (entry.prefix == ip(10, 1, 0, 0) && entry.len == 24) {
      learned_seen = true;
      EXPECT_EQ(entry.metric, kRipInfinity);
    }
    if (entry.prefix == ip(10, 2, 0, 0) && entry.len == 24) {
      stub_seen = true;
      EXPECT_EQ(entry.metric, 1);
    }
  }
  EXPECT_TRUE(learned_seen);
  EXPECT_TRUE(stub_seen);
}

TEST(RipSpeaker, SilencedNeighborTimesOutThenGarbageCollects) {
  TwoSpeakerFixture f;
  f.start_and_converge();
  ASSERT_TRUE(f.speaker_b.route(ip(10, 1, 0, 0), 24).has_value());
  ASSERT_TRUE(f.rb.fib().lookup(ip(10, 1, 0, 77)).has_value());

  // RA falls silent (its announcements vanish in the transport).
  f.speaker_a.set_transport([](device::PortIndex, net::Packet) {});

  // Past the timeout the route is invalidated: advertised at 16, FIB
  // entry withdrawn, GC pending.
  f.sim.run_until(f.sim.now() + sim::Duration::milliseconds(1200));
  EXPECT_GE(f.speaker_b.stats().routes_timed_out, 1u);
  EXPECT_FALSE(f.rb.fib().lookup(ip(10, 1, 0, 77)).has_value());
  const auto dying = f.speaker_b.route(ip(10, 1, 0, 0), 24);
  ASSERT_TRUE(dying.has_value());
  EXPECT_EQ(dying->metric, kRipInfinity);

  // Past the GC window the slot is freed.
  f.sim.run_until(f.sim.now() + sim::Duration::milliseconds(600));
  EXPECT_GE(f.speaker_b.stats().routes_gced, 1u);
  EXPECT_FALSE(f.speaker_b.route(ip(10, 1, 0, 0), 24).has_value());
}

// --- protocol edge cases on a bare simulator ---------------------------------

/// One speaker, no links: announcements are injected straight into the
/// router's delivery path and egress is captured (or dropped) by a test
/// transport.
struct BareSpeakerFixture {
  sim::Simulator sim;
  iproute::LegacyRouter router{sim, "r"};
  RipSpeaker speaker;
  std::uint64_t sends = 0;

  explicit BareSpeakerFixture(RipConfig config = {})
      : speaker((router.add_interface(iproute::Interface{
                     .mac = net::MacAddress::from_id(0xC0),
                     .ip = ip(10, 0, 9, 1)}),
                 router),
                config) {
    speaker.add_connected(ip(10, 0, 9, 0), 30, 0);
    speaker.add_neighbor(RipNeighbor{
        .port = 0, .ip = ip(10, 0, 9, 2), .mac = neighbor_mac()});
    speaker.set_transport(
        [this](device::PortIndex, net::Packet) { ++sends; });
  }

  static net::MacAddress neighbor_mac() {
    return net::MacAddress::from_id(0xC1);
  }

  /// Feeds one announcement from the configured neighbor.
  void inject(const RipMessage& message) {
    router.handle_packet(
        0, rip_datagram(message, ip(10, 0, 9, 2), ip(10, 0, 9, 1),
                        neighbor_mac(),
                        net::MacAddress::from_id(0xC0)));
  }
};

TEST(RipSpeaker, PoisonedMetricZeroClampsToOne) {
  // Route poisoning advertises metric 0; the relaxation still charges the
  // hop, so the learned metric clamps to 1, never 0.
  BareSpeakerFixture f;
  f.speaker.start();
  RipMessage lie;
  lie.entries.push_back(RipEntry{ip(10, 5, 0, 0), 24, 0});
  f.inject(lie);
  f.sim.run_until(f.sim.now() + sim::Duration::milliseconds(50));
  const auto learned = f.speaker.route(ip(10, 5, 0, 0), 24);
  ASSERT_TRUE(learned.has_value());
  EXPECT_EQ(learned->metric, 1);
}

TEST(RipSpeaker, UnreachableAnnouncementForUnknownPrefixIsIgnored) {
  BareSpeakerFixture f;
  f.speaker.start();
  RipMessage withdraw;
  withdraw.entries.push_back(RipEntry{ip(10, 6, 0, 0), 24, kRipInfinity});
  f.inject(withdraw);
  f.sim.run_until(f.sim.now() + sim::Duration::milliseconds(50));
  EXPECT_FALSE(f.speaker.route(ip(10, 6, 0, 0), 24).has_value());
  EXPECT_EQ(f.speaker.stats().route_changes, 0u);
}

TEST(RipSpeaker, AnnouncementsFromUnknownNeighborsAreDropped) {
  BareSpeakerFixture f;
  f.speaker.start();
  RipMessage message;
  message.entries.push_back(RipEntry{ip(10, 7, 0, 0), 24, 1});
  // Right port, wrong source address: not a configured neighbor.
  f.router.handle_packet(
      0, rip_datagram(message, ip(10, 0, 9, 9), ip(10, 0, 9, 1),
                      net::MacAddress::from_id(0xEE),
                      net::MacAddress::from_id(0xC0)));
  f.sim.run_until(f.sim.now() + sim::Duration::milliseconds(50));
  EXPECT_EQ(f.speaker.stats().malformed_dropped, 1u);
  EXPECT_FALSE(f.speaker.route(ip(10, 7, 0, 0), 24).has_value());
}

TEST(RipSpeaker, SteadyStateKeepsHeapAtLoneWheelAnchor) {
  // The PR 8 timer-wheel contract applied to the control plane: periodic
  // updates, the learned route's timeout timer, and triggered updates all
  // live on the wheel, so between events the simulator's heap holds
  // exactly ONE event — the wheel anchor — no matter how long the
  // steady-state period runs.
  BareSpeakerFixture f;
  f.speaker.start();
  RipMessage message;
  message.entries.push_back(RipEntry{ip(10, 5, 0, 0), 24, 1});
  f.inject(message);  // a learned route keeps a timeout timer armed

  f.sim.run_until(f.sim.now() + sim::Duration::milliseconds(250));
  const std::uint64_t sends_before = f.sends;
  for (int i = 0; i < 8; ++i) {
    f.sim.run_until(f.sim.now() + sim::Duration::milliseconds(75));
    EXPECT_EQ(f.sim.events_pending(), 1u)
        << "heap must hold only the wheel anchor (sample " << i << ")";
  }
  // The wheel anchor is not idle bookkeeping: periodic updates kept firing
  // through the sampled window.
  EXPECT_GT(f.sends, sends_before);
  EXPECT_GT(f.speaker.wheel().fired(), 0u);
  EXPECT_GE(f.speaker.wheel().active(), 1u);
}

}  // namespace
}  // namespace netco::routing
