// Unit tests for the OpenFlow 1.0 substrate: match semantics, flow table
// operations, and the switch datapath.
#include <gtest/gtest.h>

#include <vector>

#include "device/network.h"
#include "net/headers.h"
#include "openflow/channel.h"
#include "openflow/flow_table.h"
#include "openflow/match.h"
#include "openflow/switch.h"
#include "sim/simulator.h"

namespace netco::openflow {
namespace {

using device::Network;
using device::PortIndex;

net::Packet udp_packet(std::uint32_t src_id, std::uint32_t dst_id,
                       std::uint16_t sport = 10, std::uint16_t dport = 20,
                       std::optional<net::VlanTag> vlan = std::nullopt) {
  std::vector<std::byte> payload(64, std::byte{0});
  return net::build_udp(
      net::EthernetHeader{.dst = net::MacAddress::from_id(dst_id),
                          .src = net::MacAddress::from_id(src_id)},
      vlan,
      net::Ipv4Header{.src = net::Ipv4Address::from_id(src_id),
                      .dst = net::Ipv4Address::from_id(dst_id)},
      net::UdpHeader{.src_port = sport, .dst_port = dport}, payload);
}

Match key_of(const net::Packet& p, PortIndex port) {
  return Match::exact_from(*net::parse_packet(p), port);
}

// --- Match ----------------------------------------------------------------

TEST(Match, WildcardMatchesEverything) {
  EXPECT_TRUE(Match{}.covers(key_of(udp_packet(1, 2), 0)));
}

TEST(Match, SingleFieldMatch) {
  Match rule;
  rule.with_dl_dst(net::MacAddress::from_id(2));
  EXPECT_TRUE(rule.covers(key_of(udp_packet(1, 2), 0)));
  EXPECT_FALSE(rule.covers(key_of(udp_packet(1, 3), 0)));
}

TEST(Match, InPortMatch) {
  Match rule;
  rule.with_in_port(3);
  EXPECT_TRUE(rule.covers(key_of(udp_packet(1, 2), 3)));
  EXPECT_FALSE(rule.covers(key_of(udp_packet(1, 2), 4)));
}

TEST(Match, VlanFieldDistinguishesUntagged) {
  Match untagged;
  untagged.with_dl_vlan(kVlanNone);
  EXPECT_TRUE(untagged.covers(key_of(udp_packet(1, 2), 0)));
  EXPECT_FALSE(untagged.covers(
      key_of(udp_packet(1, 2, 10, 20, net::VlanTag{.vid = 5}), 0)));

  Match tagged;
  tagged.with_dl_vlan(5);
  EXPECT_TRUE(tagged.covers(
      key_of(udp_packet(1, 2, 10, 20, net::VlanTag{.vid = 5}), 0)));
  EXPECT_FALSE(tagged.covers(key_of(udp_packet(1, 2), 0)));
}

TEST(Match, TransportPortsMatch) {
  Match rule;
  rule.with_nw_proto(net::IpProto::Udp).with_tp_dst(20);
  EXPECT_TRUE(rule.covers(key_of(udp_packet(1, 2, 10, 20), 0)));
  EXPECT_FALSE(rule.covers(key_of(udp_packet(1, 2, 10, 21), 0)));
}

TEST(Match, FieldAbsentInKeyNeverMatches) {
  // Rule wants tp_dst, but a non-IP frame has no transport layer.
  Match rule;
  rule.with_tp_dst(20);
  net::Packet raw = net::build_ethernet(
      net::EthernetHeader{.dst = net::MacAddress::from_id(2),
                          .src = net::MacAddress::from_id(1),
                          .ethertype = 0x8899},
      std::nullopt, {});
  EXPECT_FALSE(rule.covers(key_of(raw, 0)));
}

TEST(Match, StrictEquality) {
  Match a, b;
  a.with_dl_dst(net::MacAddress::from_id(2)).with_in_port(1);
  b.with_dl_dst(net::MacAddress::from_id(2)).with_in_port(1);
  EXPECT_TRUE(a.strictly_equals(b));
  b.with_tp_dst(9);
  EXPECT_FALSE(a.strictly_equals(b));
}

TEST(Match, ToStringMentionsFields) {
  Match rule;
  rule.with_in_port(2).with_dl_dst(net::MacAddress::from_id(5));
  const auto text = rule.to_string();
  EXPECT_NE(text.find("in_port=2"), std::string::npos);
  EXPECT_NE(text.find("dl_dst="), std::string::npos);
  EXPECT_EQ(Match{}.to_string(), "(any)");
}

// --- FlowTable --------------------------------------------------------------

TEST(FlowTable, HighestPriorityWins) {
  FlowTable table;
  FlowSpec low;
  low.match.with_dl_dst(net::MacAddress::from_id(2));
  low.actions = {OutputAction::to(1)};
  low.priority = 1;
  FlowSpec high = low;
  high.actions = {OutputAction::to(2)};
  high.priority = 10;
  table.add(low, {});
  table.add(high, {});

  const auto* entry = table.peek(key_of(udp_packet(1, 2), 0), {});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->spec.priority, 10);
}

TEST(FlowTable, AddReplacesStrictlyIdenticalMatch) {
  FlowTable table;
  FlowSpec spec;
  spec.match.with_dl_dst(net::MacAddress::from_id(2));
  spec.actions = {OutputAction::to(1)};
  spec.priority = 5;
  table.add(spec, {});
  spec.actions = {OutputAction::to(9)};
  table.add(spec, {});
  EXPECT_EQ(table.size(), 1u);
  const auto* entry = table.peek(key_of(udp_packet(1, 2), 0), {});
  EXPECT_EQ(std::get<OutputAction>(entry->spec.actions[0]).port, 9u);
}

TEST(FlowTable, LookupUpdatesCounters) {
  FlowTable table;
  FlowSpec spec;
  spec.actions = {OutputAction::to(1)};
  table.add(spec, {});
  const auto p = udp_packet(1, 2);
  auto* entry = table.lookup(key_of(p, 0), p.size(), {});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->packet_count, 1u);
  EXPECT_EQ(entry->byte_count, p.size());
  EXPECT_EQ(table.stats().lookups, 1u);
  EXPECT_EQ(table.stats().hits, 1u);
}

TEST(FlowTable, MissLeavesCountersUntouched) {
  FlowTable table;
  FlowSpec spec;
  spec.match.with_dl_dst(net::MacAddress::from_id(7));
  spec.actions = {OutputAction::to(1)};
  table.add(spec, {});
  EXPECT_EQ(table.lookup(key_of(udp_packet(1, 2), 0), 64, {}), nullptr);
  EXPECT_EQ(table.stats().hits, 0u);
}

TEST(FlowTable, NonStrictDeleteRemovesCovered) {
  FlowTable table;
  for (std::uint32_t id = 1; id <= 3; ++id) {
    FlowSpec spec;
    spec.match.with_dl_dst(net::MacAddress::from_id(id)).with_in_port(0);
    spec.actions = {OutputAction::to(1)};
    table.add(spec, {});
  }
  Match pattern;
  pattern.with_in_port(0);  // covers all three
  EXPECT_EQ(table.remove(pattern), 3u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, StrictDeleteNeedsExactPriority) {
  FlowTable table;
  FlowSpec spec;
  spec.match.with_in_port(0);
  spec.actions = {OutputAction::to(1)};
  spec.priority = 5;
  table.add(spec, {});
  EXPECT_EQ(table.remove_strict(spec.match, 4), 0u);
  EXPECT_EQ(table.remove_strict(spec.match, 5), 1u);
}

TEST(FlowTable, ModifyRewritesActions) {
  FlowTable table;
  FlowSpec spec;
  spec.match.with_in_port(0);
  spec.actions = {OutputAction::to(1)};
  table.add(spec, {});
  EXPECT_EQ(table.modify_actions(Match{}, {OutputAction::to(7)}), 1u);
  const auto* entry = table.peek(key_of(udp_packet(1, 2), 0), {});
  EXPECT_EQ(std::get<OutputAction>(entry->spec.actions[0]).port, 7u);
}

TEST(FlowTable, HardTimeoutExpires) {
  FlowTable table;
  FlowSpec spec;
  spec.actions = {OutputAction::to(1)};
  spec.hard_timeout = sim::Duration::seconds(1);
  table.add(spec, sim::TimePoint::origin());

  const auto just_before =
      sim::TimePoint::origin() + sim::Duration::milliseconds(999);
  EXPECT_NE(table.peek(key_of(udp_packet(1, 2), 0), just_before), nullptr);
  const auto after = sim::TimePoint::origin() + sim::Duration::seconds(2);
  EXPECT_EQ(table.lookup(key_of(udp_packet(1, 2), 0), 64, after), nullptr);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.stats().entries_expired, 1u);
}

TEST(FlowTable, IdleTimeoutRefreshedByTraffic) {
  FlowTable table;
  FlowSpec spec;
  spec.actions = {OutputAction::to(1)};
  spec.idle_timeout = sim::Duration::seconds(1);
  table.add(spec, sim::TimePoint::origin());

  auto t = sim::TimePoint::origin();
  for (int i = 0; i < 5; ++i) {
    t = t + sim::Duration::milliseconds(800);
    EXPECT_NE(table.lookup(key_of(udp_packet(1, 2), 0), 64, t), nullptr);
  }
  t = t + sim::Duration::milliseconds(1200);  // now idle past the limit
  EXPECT_EQ(table.lookup(key_of(udp_packet(1, 2), 0), 64, t), nullptr);
}

// --- Switch datapath --------------------------------------------------------

/// Records all deliveries.
class Probe : public device::Node {
 public:
  using Node::Node;
  void handle_packet(device::PortIndex port, net::Packet packet) override {
    received.push_back({port, std::move(packet)});
  }
  std::vector<std::pair<device::PortIndex, net::Packet>> received;
};

struct SwitchFixture {
  sim::Simulator sim;
  Network net{sim};
  OpenFlowSwitch& sw;
  Probe& h0;
  Probe& h1;
  Probe& h2;

  SwitchFixture()
      : sw(net.add_node<OpenFlowSwitch>("sw")),
        h0(net.add_node<Probe>("h0")),
        h1(net.add_node<Probe>("h1")),
        h2(net.add_node<Probe>("h2")) {
    net.connect(sw, h0);
    net.connect(sw, h1);
    net.connect(sw, h2);
  }
};

TEST(Switch, ForwardsOnMatch) {
  SwitchFixture f;
  FlowSpec spec;
  spec.match.with_dl_dst(net::MacAddress::from_id(2));
  spec.actions = {OutputAction::to(1)};
  f.sw.table().add(spec, f.sim.now());

  f.h0.send(0, udp_packet(1, 2));
  f.sim.run();
  EXPECT_EQ(f.h1.received.size(), 1u);
  EXPECT_EQ(f.h2.received.size(), 0u);
  EXPECT_EQ(f.sw.stats().rx_packets, 1u);
  EXPECT_EQ(f.sw.stats().tx_packets, 1u);
}

TEST(Switch, EmptyActionListDrops) {
  SwitchFixture f;
  FlowSpec spec;  // matches everything, no actions
  f.sw.table().add(spec, f.sim.now());
  f.h0.send(0, udp_packet(1, 2));
  f.sim.run();
  EXPECT_EQ(f.h1.received.size(), 0u);
  EXPECT_EQ(f.h2.received.size(), 0u);
}

TEST(Switch, MissWithoutControllerDrops) {
  SwitchFixture f;
  f.h0.send(0, udp_packet(1, 2));
  f.sim.run();
  EXPECT_EQ(f.sw.stats().table_misses, 1u);
  EXPECT_EQ(f.sw.stats().dropped_no_rule, 1u);
}

TEST(Switch, FloodSkipsIngress) {
  SwitchFixture f;
  FlowSpec spec;
  spec.actions = {OutputAction::flood()};
  f.sw.table().add(spec, f.sim.now());
  f.h0.send(0, udp_packet(1, 2));
  f.sim.run();
  EXPECT_EQ(f.h0.received.size(), 0u);
  EXPECT_EQ(f.h1.received.size(), 1u);
  EXPECT_EQ(f.h2.received.size(), 1u);
}

TEST(Switch, SequentialActionSemantics) {
  // OF 1.0: each output emits the packet in its *current* state.
  SwitchFixture f;
  FlowSpec spec;
  spec.actions = {OutputAction::to(1), SetVlanVidAction{42},
                  OutputAction::to(2)};
  f.sw.table().add(spec, f.sim.now());
  f.h0.send(0, udp_packet(1, 2));
  f.sim.run();
  ASSERT_EQ(f.h1.received.size(), 1u);
  ASSERT_EQ(f.h2.received.size(), 1u);
  EXPECT_FALSE(net::parse_packet(f.h1.received[0].second)->vlan.has_value());
  ASSERT_TRUE(net::parse_packet(f.h2.received[0].second)->vlan.has_value());
  EXPECT_EQ(net::parse_packet(f.h2.received[0].second)->vlan->vid, 42);
}

TEST(Switch, MultipleOutputsHubRule) {
  SwitchFixture f;
  FlowSpec spec;
  spec.match.with_in_port(0);
  spec.actions = {OutputAction::to(1), OutputAction::to(2)};
  f.sw.table().add(spec, f.sim.now());
  f.h0.send(0, udp_packet(1, 2));
  f.sim.run();
  EXPECT_EQ(f.h1.received.size(), 1u);
  EXPECT_EQ(f.h2.received.size(), 1u);
  EXPECT_EQ(f.h1.received[0].second, f.h2.received[0].second);
}

TEST(Switch, BlockedIngressDrops) {
  SwitchFixture f;
  FlowSpec spec;
  spec.actions = {OutputAction::to(1)};
  f.sw.table().add(spec, f.sim.now());
  f.sw.receive_port_mod(PortMod{.port = 0, .blocked = true});
  f.h0.send(0, udp_packet(1, 2));
  f.sim.run();
  EXPECT_EQ(f.h1.received.size(), 0u);
  EXPECT_EQ(f.sw.stats().dropped_blocked_port, 1u);

  f.sw.receive_port_mod(PortMod{.port = 0, .blocked = false});
  f.h0.send(0, udp_packet(1, 2));
  f.sim.run();
  EXPECT_EQ(f.h1.received.size(), 1u);
}

TEST(Switch, BlockedEgressDrops) {
  SwitchFixture f;
  FlowSpec spec;
  spec.actions = {OutputAction::to(1)};
  f.sw.table().add(spec, f.sim.now());
  f.sw.receive_port_mod(PortMod{.port = 1, .blocked = true});
  f.h0.send(0, udp_packet(1, 2));
  f.sim.run();
  EXPECT_EQ(f.h1.received.size(), 0u);
}

TEST(Switch, ProcessingDelayApplied) {
  sim::Simulator sim;
  Network net(sim);
  auto& sw = net.add_node<OpenFlowSwitch>(
      "sw", SwitchProfile{.vendor = "t",
                          .processing_delay = sim::Duration::microseconds(40)});
  auto& a = net.add_node<Probe>("a");
  auto& b = net.add_node<Probe>("b");
  net.connect(sw, a);
  net.connect(sw, b);
  FlowSpec spec;
  spec.actions = {OutputAction::to(1)};
  sw.table().add(spec, sim.now());

  a.send(0, udp_packet(1, 2));
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  // ≥ 40 µs pipeline + two link traversals.
  EXPECT_GE(sim.now().ns(), sim::Duration::microseconds(40).ns());
}

TEST(Switch, IngressTapSeesEverythingIncludingBlocked) {
  SwitchFixture f;
  int taps = 0;
  f.sw.set_ingress_tap([&taps](device::PortIndex, const net::Packet&) { ++taps; });
  f.sw.receive_port_mod(PortMod{.port = 0, .blocked = true});
  f.h0.send(0, udp_packet(1, 2));
  f.sim.run();
  EXPECT_EQ(taps, 1);
}

TEST(Switch, InterceptorCanSwallow) {
  struct Swallow : DatapathInterceptor {
    int count = 0;
    bool intercept(device::Datapath&, device::PortIndex, net::Packet&) override {
      ++count;
      return true;
    }
  };
  SwitchFixture f;
  FlowSpec spec;
  spec.actions = {OutputAction::to(1)};
  f.sw.table().add(spec, f.sim.now());
  Swallow swallow;
  f.sw.set_interceptor(&swallow);
  f.h0.send(0, udp_packet(1, 2));
  f.sim.run();
  EXPECT_EQ(swallow.count, 1);
  EXPECT_EQ(f.h1.received.size(), 0u);
}

TEST(Switch, PacketOutTableUsesFlowTable) {
  SwitchFixture f;
  FlowSpec spec;
  spec.match.with_dl_dst(net::MacAddress::from_id(2));
  spec.actions = {OutputAction::to(2)};
  f.sw.table().add(spec, f.sim.now());
  f.sw.receive_packet_out(PacketOut{.actions = {OutputAction::table()},
                                    .packet = udp_packet(1, 2),
                                    .in_port = device::kNoPort});
  f.sim.run();
  EXPECT_EQ(f.h2.received.size(), 1u);
}

TEST(Switch, PacketOutTableSkipsInPortRules) {
  // A packet-out with no ingress context must not match in_port rules —
  // the combiner's released packets rely on this.
  SwitchFixture f;
  FlowSpec punt;
  punt.match.with_in_port(1);
  punt.actions = {OutputAction::to(0)};
  punt.priority = 20;
  f.sw.table().add(punt, f.sim.now());
  FlowSpec mac_route;
  mac_route.match.with_dl_dst(net::MacAddress::from_id(2));
  mac_route.actions = {OutputAction::to(2)};
  mac_route.priority = 10;
  f.sw.table().add(mac_route, f.sim.now());

  f.sw.receive_packet_out(PacketOut{.actions = {OutputAction::table()},
                                    .packet = udp_packet(1, 2),
                                    .in_port = device::kNoPort});
  f.sim.run();
  EXPECT_EQ(f.h0.received.size(), 0u);
  EXPECT_EQ(f.h2.received.size(), 1u);
}

TEST(Switch, PerPortCountersTrack) {
  SwitchFixture f;
  FlowSpec spec;
  spec.actions = {OutputAction::to(1)};
  f.sw.table().add(spec, f.sim.now());
  f.h0.send(0, udp_packet(1, 2));
  f.h0.send(0, udp_packet(1, 2));
  f.sim.run();
  ASSERT_GE(f.sw.port_rx().size(), 1u);
  EXPECT_EQ(f.sw.port_rx()[0], 2u);
  ASSERT_GE(f.sw.port_tx().size(), 2u);
  EXPECT_EQ(f.sw.port_tx()[1], 2u);
}

}  // namespace
}  // namespace netco::openflow
