// Tier-1 smoke for the sharded fleet soak: merged hashes must be
// identical for shards ∈ {1, 2, 4}, a 1-circuit fleet must reproduce
// run_soak() bit-for-bit, and cross-shard beacon traffic must be
// trace-neutral. The datacenter-scale version lives in
// bench/casestudy_datacenter.
#include <gtest/gtest.h>

#include "scenario/sharded_soak.h"
#include "scenario/soak.h"

namespace netco::scenario {
namespace {

SoakOptions base_options() {
  SoakOptions options;
  options.k = 3;
  options.policy = core::ReleasePolicy::kMajority;
  options.seed = 77;
  options.packets = 2500;  // ~0.25 s of sim time per circuit
  return options;
}

ShardedSoakOptions fleet_options(std::size_t circuits, int shards,
                                 bool beacons = false) {
  ShardedSoakOptions options;
  options.base = base_options();
  options.circuits = circuits;
  options.shards = shards;
  options.cross_shard_beacons = beacons;
  return options;
}

TEST(ShardedSoak, SingleCircuitReproducesRunSoak) {
  const SoakResult solo = run_soak(base_options());
  const ShardedSoakResult fleet = run_sharded_soak(fleet_options(1, 1));
  ASSERT_EQ(fleet.circuits.size(), 1u);
  EXPECT_TRUE(fleet.ok());
  EXPECT_EQ(fleet.merged_stream_hash, solo.stream_hash);
  EXPECT_EQ(fleet.merged_egress_hash, solo.egress_set_hash);
  EXPECT_EQ(fleet.circuits[0].trace_records, solo.trace_records);
  EXPECT_EQ(fleet.circuits[0].compare_released, solo.compare_released);
  EXPECT_EQ(fleet.datagrams_sent, solo.datagrams_sent);
  EXPECT_EQ(fleet.metrics_json, solo.metrics_json);
}

TEST(ShardedSoak, MergedHashIsShardCountInvariant) {
  const ShardedSoakResult one = run_sharded_soak(fleet_options(4, 1));
  const ShardedSoakResult two = run_sharded_soak(fleet_options(4, 2));
  const ShardedSoakResult four = run_sharded_soak(fleet_options(4, 4));
  EXPECT_TRUE(one.ok());
  EXPECT_TRUE(two.ok());
  EXPECT_TRUE(four.ok());
  EXPECT_EQ(one.merged_stream_hash, two.merged_stream_hash);
  EXPECT_EQ(one.merged_stream_hash, four.merged_stream_hash);
  EXPECT_EQ(one.merged_egress_hash, two.merged_egress_hash);
  EXPECT_EQ(one.merged_egress_hash, four.merged_egress_hash);
  EXPECT_EQ(one.rounds, two.rounds);
  EXPECT_EQ(one.rounds, four.rounds);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(one.circuits[i].stream_hash, two.circuits[i].stream_hash)
        << "circuit " << i;
    EXPECT_EQ(one.circuits[i].stream_hash, four.circuits[i].stream_hash)
        << "circuit " << i;
    EXPECT_EQ(one.circuits[i].trace_records, four.circuits[i].trace_records)
        << "circuit " << i;
  }
  // Distinct seeds: the fold must actually see distinct streams.
  EXPECT_NE(one.circuits[0].stream_hash, one.circuits[1].stream_hash);
}

TEST(ShardedSoak, DoubleRunIsDeterministic) {
  const ShardedSoakResult a = run_sharded_soak(fleet_options(3, 2));
  const ShardedSoakResult b = run_sharded_soak(fleet_options(3, 2));
  EXPECT_EQ(a.merged_stream_hash, b.merged_stream_hash);
  EXPECT_EQ(a.merged_egress_hash, b.merged_egress_hash);
  EXPECT_EQ(a.datagrams_sent, b.datagrams_sent);
  EXPECT_EQ(a.rounds, b.rounds);
  // Same shard count ⇒ same pinning ⇒ the merged metrics snapshot is
  // textually identical too (histogram float sums add in a fixed order).
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

TEST(ShardedSoak, BeaconTrafficIsTraceNeutral) {
  const ShardedSoakResult quiet = run_sharded_soak(fleet_options(2, 2, false));
  const ShardedSoakResult chatty = run_sharded_soak(fleet_options(2, 2, true));
  EXPECT_EQ(quiet.cross_shard_messages, 0u);
  EXPECT_GT(chatty.cross_shard_messages, 0u);
  EXPECT_GT(chatty.beacons_received, 0u);
  // The shard-crossing link traffic must not perturb any circuit's
  // protocol event stream.
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(quiet.circuits[i].stream_hash, chatty.circuits[i].stream_hash)
        << "circuit " << i;
    EXPECT_EQ(quiet.circuits[i].egress_set_hash,
              chatty.circuits[i].egress_set_hash)
        << "circuit " << i;
  }
  EXPECT_EQ(quiet.merged_stream_hash, chatty.merged_stream_hash);
}

}  // namespace
}  // namespace netco::scenario
