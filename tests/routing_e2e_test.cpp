// End-to-end routing convergence through the router position
// (scenario/convergence.h): the diamond of four RIP speakers with the
// RA—RB hop passing through either a single unprotected switch or a k=3
// combiner circuit, while replicas inside the position lie about routes.
//
// The headline acceptance claim lives here as a tier-1 test: ONE lying
// replica defeats the unprotected position but not the combiner — the
// paper's data-plane reliability argument carried over to the control
// plane. The suite name (RoutingConvergence) is load-bearing: the tsan
// CMake preset selects these tests by name to race-check the fleet path.
#include <gtest/gtest.h>

#include "scenario/convergence.h"

namespace netco::scenario {
namespace {

ConvergenceOptions quick_options() {
  ConvergenceOptions options;
  options.seed = 7;
  // The quick-bench horizon: long enough for initial convergence plus
  // several periodic-update rounds of sustained agreement.
  options.horizon = sim::Duration::milliseconds(1500);
  return options;
}

TEST(RoutingConvergence, BenignConvergesInBothModes) {
  for (const bool use_combiner : {false, true}) {
    ConvergenceOptions options = quick_options();
    options.use_combiner = use_combiner;
    options.liars = 0;
    options.attack = RoutingAttack::kNone;
    const ConvergenceResult result = run_convergence(options);
    EXPECT_TRUE(result.converged_correct)
        << (use_combiner ? "combiner" : "unprotected");
    EXPECT_GE(result.convergence_ns, 0);
    EXPECT_EQ(result.invariant_violations, 0u);
    EXPECT_GT(result.updates_received, 0u);
    EXPECT_GT(result.goodput_overall, 0.9);
  }
}

TEST(RoutingConvergence, OneLiarDefeatsUnprotectedButNotCombiner) {
  // The acceptance criterion. Same seed, same attack, same timing — the
  // only difference is what sits in the router position.
  ConvergenceOptions options = quick_options();
  options.liars = 1;
  options.attack = RoutingAttack::kInflate;

  options.use_combiner = true;
  const ConvergenceResult protected_run = run_convergence(options);
  EXPECT_TRUE(protected_run.converged_correct)
      << "2 honest replicas out-vote the liar in a k=3 quorum";
  EXPECT_GE(protected_run.convergence_ns, 0);
  EXPECT_EQ(protected_run.invariant_violations, 0u);

  options.use_combiner = false;
  const ConvergenceResult unprotected_run = run_convergence(options);
  EXPECT_FALSE(unprotected_run.converged_correct)
      << "a single lying switch owns the unprotected position";
}

TEST(RoutingConvergence, TwoIdenticalLiarsOutvoteK3Quorum) {
  // The quorum boundary, measured: metric rewriting is a pure function of
  // the wire bytes, so two liars emit bit-identical lies and win 2-of-3.
  // Expected failure mode, locked in so a change that accidentally breaks
  // liar determinism (making the lies diverge and lose quorum) shows up.
  ConvergenceOptions options = quick_options();
  options.use_combiner = true;
  options.liars = 2;
  options.attack = RoutingAttack::kInflate;
  const ConvergenceResult result = run_convergence(options);
  EXPECT_FALSE(result.converged_correct);
}

TEST(RoutingConvergence, BlackholeCollapsesGoodputOnlyWhenUnprotected) {
  ConvergenceOptions options = quick_options();
  options.liars = 1;
  options.attack = RoutingAttack::kBlackhole;

  options.use_combiner = true;
  const ConvergenceResult protected_run = run_convergence(options);
  EXPECT_TRUE(protected_run.converged_correct);
  EXPECT_GT(protected_run.goodput_overall, 0.9)
      << "the quorum releases copies from the honest replicas";

  options.use_combiner = false;
  const ConvergenceResult unprotected_run = run_convergence(options);
  EXPECT_GT(unprotected_run.data_dropped_by_liars, 0u);
  EXPECT_LT(unprotected_run.goodput_overall,
            protected_run.goodput_overall / 2)
      << "poisoned announcements attract the flow into the blackhole";
}

TEST(RoutingConvergence, SoloRunsAreSeedDeterministic) {
  ConvergenceOptions options = quick_options();
  options.use_combiner = true;
  options.liars = 1;
  options.attack = RoutingAttack::kInflate;
  const ConvergenceResult a = run_convergence(options);
  const ConvergenceResult b = run_convergence(options);
  EXPECT_EQ(a.stream_hash, b.stream_hash);
  EXPECT_EQ(a.convergence_ns, b.convergence_ns);
  EXPECT_EQ(a.data_delivered, b.data_delivered);
  EXPECT_EQ(a.updates_sent, b.updates_sent);
  EXPECT_EQ(a.route_changes, b.route_changes);
}

TEST(RoutingConvergence, FleetMergedHashIsShardCountInvariant) {
  // The sharded-fleet determinism lock: the same two circuits produce the
  // same merged stream hash whether they share one worker or race on two,
  // and circuit 0 reproduces the solo run bit-for-bit.
  ConvergenceOptions base = quick_options();
  base.use_combiner = true;
  base.liars = 1;
  base.attack = RoutingAttack::kInflate;

  const ConvergenceResult solo = run_convergence(base);
  const ConvergenceFleetResult one_shard = run_convergence_fleet(base, 2, 1);
  const ConvergenceFleetResult two_shards = run_convergence_fleet(base, 2, 2);

  ASSERT_EQ(one_shard.circuits.size(), 2u);
  ASSERT_EQ(two_shards.circuits.size(), 2u);
  EXPECT_EQ(one_shard.merged_stream_hash, two_shards.merged_stream_hash);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(one_shard.circuits[i].stream_hash,
              two_shards.circuits[i].stream_hash)
        << "circuit " << i;
    EXPECT_EQ(one_shard.circuits[i].converged_correct,
              two_shards.circuits[i].converged_correct)
        << "circuit " << i;
  }
  EXPECT_EQ(one_shard.circuits[0].stream_hash, solo.stream_hash);
}

}  // namespace
}  // namespace netco::scenario
