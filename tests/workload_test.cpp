// Workload engine: flat-pool mechanics plus end-to-end runs through the
// combiner — every scenario shape terminates, holds the soak invariants,
// and reproduces bit-identically under the same seed, solo and sharded.
#include <gtest/gtest.h>

#include <cstdint>

#include "scenario/workload.h"
#include "workload/flow_pool.h"

namespace netco::scenario {
namespace {

using workload::FlowPool;
using workload::FlowState;

TEST(WorkloadPool, AcquireReleaseRecyclesWithoutAllocating) {
  FlowPool pool(4);
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.live(), 0u);

  // Deterministic acquisition order: 0, 1, 2, 3.
  const std::uint32_t a = pool.acquire();
  const std::uint32_t b = pool.acquire();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(pool.state[a], FlowState::kPending);
  EXPECT_EQ(pool.live(), 2u);

  const std::uint32_t gen_a = pool.generation[a];
  pool.release(a);
  EXPECT_EQ(pool.state[a], FlowState::kFree);
  EXPECT_EQ(pool.generation[a], gen_a + 1) << "release must bump generation";
  EXPECT_EQ(pool.live(), 1u);

  // The freed slot is recycled before fresh ones.
  EXPECT_EQ(pool.acquire(), a);
  EXPECT_EQ(pool.acquire(), 2u);
  EXPECT_EQ(pool.acquire(), 3u);
  EXPECT_EQ(pool.acquire(), FlowPool::kNil) << "exhausted pool returns kNil";
  EXPECT_EQ(pool.live(), 4u);
  EXPECT_EQ(pool.peak_live(), 4u);
}

SoakOptions workload_options(workload::Scenario scenario,
                             std::uint64_t seed = 4242) {
  SoakOptions options;
  options.k = 3;
  options.seed = seed;
  options.workload.enabled = true;
  options.workload.scenario = scenario;
  options.workload.duration = sim::Duration::milliseconds(400);
  options.workload.session_arrivals_per_sec = 120.0;
  options.workload.flows_per_session_mean = 2.0;
  options.workload.think_mean = sim::Duration::milliseconds(40);
  options.workload.flow_max_packets = 64;
  options.workload.pool_capacity = 1024;
  options.workload.active_cap = 64;
  options.workload.ddos_packets_per_sec = 5000.0;
  return options;
}

TEST(WorkloadSmoke, SteadyRunCompletesFlowsAndHoldsInvariants) {
  const SoakResult result = run_workload(workload_options(
      workload::Scenario::kSteady));
  EXPECT_TRUE(result.ok()) << "violations=" << result.invariants.violations;
  for (const auto& detail : result.invariants.details) {
    ADD_FAILURE() << detail;
  }
  EXPECT_GT(result.wl_sessions_started, 10u);
  EXPECT_GT(result.wl_flows_completed, 10u);
  EXPECT_GT(result.datagrams_sent, 100u);
  EXPECT_GT(result.delivered_unique, 0u);
  EXPECT_GT(result.compare_released, 0u);
  EXPECT_GT(result.audits, 0u);
  // Every session terminated: the drain released every record.
  EXPECT_EQ(result.wl_sessions_finished, result.wl_sessions_started);
  EXPECT_GT(result.wl_fct_p50_ms, 0.0);
  EXPECT_GE(result.wl_fct_p99_ms, result.wl_fct_p50_ms);
  // Per-flow timers actually rode the wheel.
  EXPECT_GT(result.wl_timer_scheduled, 0u);
  EXPECT_GT(result.wl_timer_fired, 0u);
}

TEST(WorkloadSmoke, SameSeedIsBitReproducible) {
  const SoakOptions options =
      workload_options(workload::Scenario::kFlashCrowd);
  const SoakResult a = run_workload(options);
  const SoakResult b = run_workload(options);
  EXPECT_TRUE(a.ok()) << "violations=" << a.invariants.violations;
  EXPECT_EQ(a.stream_hash, b.stream_hash);
  EXPECT_EQ(a.trace_records, b.trace_records);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.datagrams_sent, b.datagrams_sent);
  EXPECT_EQ(a.wl_flows_completed, b.wl_flows_completed);
  EXPECT_EQ(a.wl_fct_p99_ms, b.wl_fct_p99_ms);
}

TEST(WorkloadSmoke, DiurnalRampShapesArrivals) {
  SoakOptions options = workload_options(workload::Scenario::kDiurnal);
  const SoakResult result = run_workload(options);
  EXPECT_TRUE(result.ok()) << "violations=" << result.invariants.violations;
  EXPECT_GT(result.wl_sessions_started, 10u);
  EXPECT_GT(result.wl_flows_completed, 0u);
}

TEST(WorkloadSmoke, DdosBurstFloodsOneReplicaAndStillDrains) {
  const SoakResult result = run_workload(workload_options(
      workload::Scenario::kDdosBurst));
  EXPECT_TRUE(result.ok()) << "violations=" << result.invariants.violations;
  for (const auto& detail : result.invariants.details) {
    ADD_FAILURE() << detail;
  }
  EXPECT_GT(result.wl_ddos_emitted, 0u) << "the burst never fired";
  // Forged single-replica copies must never reach quorum; legit flows
  // still complete around the flood.
  EXPECT_GT(result.wl_flows_completed, 0u);
  EXPECT_GT(result.delivered_unique, 0u);
}

TEST(WorkloadSmoke, DdosBurstIsBitReproducible) {
  const SoakOptions options =
      workload_options(workload::Scenario::kDdosBurst, 99);
  const SoakResult a = run_workload(options);
  const SoakResult b = run_workload(options);
  EXPECT_EQ(a.stream_hash, b.stream_hash);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.wl_ddos_emitted, b.wl_ddos_emitted);
}

TEST(WorkloadFleet, MergedHashesAreShardCountInvariant) {
  ShardedSoakOptions fleet;
  fleet.base = workload_options(workload::Scenario::kSteady, 555);
  fleet.base.workload.duration = sim::Duration::milliseconds(250);
  fleet.circuits = 3;

  fleet.shards = 1;
  const ShardedSoakResult one = run_workload_fleet(fleet);
  fleet.shards = 3;
  const ShardedSoakResult three = run_workload_fleet(fleet);

  EXPECT_TRUE(one.ok());
  EXPECT_TRUE(three.ok());
  EXPECT_EQ(one.merged_stream_hash, three.merged_stream_hash);
  EXPECT_EQ(one.merged_egress_hash, three.merged_egress_hash);
  EXPECT_EQ(one.datagrams_sent, three.datagrams_sent);
  EXPECT_EQ(one.delivered_unique, three.delivered_unique);
  // Distinct per-circuit seeds actually diversified the populations.
  EXPECT_NE(one.circuits[0].stream_hash, one.circuits[1].stream_hash);
}

TEST(WorkloadFleet, SingleCircuitFleetReproducesRunWorkload) {
  ShardedSoakOptions fleet;
  fleet.base = workload_options(workload::Scenario::kSteady, 777);
  fleet.base.workload.duration = sim::Duration::milliseconds(250);
  fleet.circuits = 1;
  fleet.shards = 1;
  const ShardedSoakResult sharded = run_workload_fleet(fleet);
  const SoakResult solo = run_workload(fleet.base);
  EXPECT_EQ(sharded.merged_stream_hash, solo.stream_hash);
  EXPECT_EQ(sharded.circuits[0].wl_flows_completed, solo.wl_flows_completed);
}

TEST(WorkloadSmokeDeathTest, RejectsDisabledConfig) {
  SoakOptions options;
  EXPECT_DEATH(run_workload(options), "workload.enabled");
}

}  // namespace
}  // namespace netco::scenario
