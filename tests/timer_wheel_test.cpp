// TimerWheel: heap-equivalence differential test plus the wheel-specific
// mechanics (quantization, cancellation generations, cascades, overflow).
//
// The differential test is the load-bearing one: with tick = 1 ns the
// wheel must be observationally identical to Simulator::schedule_at —
// same fire times, same order including (time, seq) ties — under a mixed
// workload of schedules, cancellations, and reschedule-on-fire chains
// spanning every wheel level and the overflow bucket.
#include "sim/timer_wheel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"

namespace {

using namespace netco;

using FireLog = std::vector<std::pair<std::int64_t, std::uint64_t>>;

/// Drives the same randomized timer program against either the raw
/// simulator heap or a 1 ns-tick TimerWheel; the observable artifact is
/// the (fire time, label) log.
class DiffDriver {
 public:
  DiffDriver(bool use_wheel, std::uint64_t seed)
      : sim_(1),
        wheel_(sim_, {.tick = sim::Duration::nanoseconds(1)}),
        use_wheel_(use_wheel),
        rng_mutator_(seed),
        rng_callback_(seed ^ 0x5DEECE66DULL) {}

  void run() {
    schedule_mutator(0);
    sim_.run();
  }

  [[nodiscard]] const FireLog& log() const noexcept { return log_; }
  [[nodiscard]] const sim::TimerWheel& wheel() const noexcept {
    return wheel_;
  }

 private:
  struct Entry {
    std::uint64_t label = 0;
    sim::TimerWheel::TimerId id = sim::TimerWheel::kInvalidTimerId;
    sim::EventHandle handle;
  };

  /// Mutator events run at exact multiples of this period; timer deadlines
  /// are nudged off those instants so the two schedulers' interleaving of
  /// mutator vs timer work at one instant can never differ.
  static constexpr std::int64_t kMutatorPeriodNs = 1'000'000;
  static constexpr int kMutatorTicks = 200;

  void schedule_mutator(int i) {
    if (i >= kMutatorTicks) return;
    sim_.schedule_after(sim::Duration::nanoseconds(kMutatorPeriodNs),
                        [this, i] {
                          mutate();
                          schedule_mutator(i + 1);
                        });
  }

  std::int64_t pick_delay(Rng& rng) {
    // Mixed horizons: level 0 through level 3 and past the 2^32-tick
    // overflow horizon; repeated small values manufacture (time, seq)
    // ties. 6e9 ns > 2^32 ns, so the overflow bucket is exercised too.
    static constexpr std::int64_t kChoices[] = {
        1,         2,         3,          3,          5,
        8,         21,        101,        999,        4'242,
        65'537,    777'777,   5'000'001,  23'456'789, 1'000'000'007,
        6'000'000'011};
    std::int64_t delay =
        kChoices[rng.uniform_u64(std::size(kChoices))];
    if ((sim_.now().ns() + delay) % kMutatorPeriodNs == 0) ++delay;
    return delay;
  }

  void schedule_timer(std::int64_t delay) {
    Entry entry;
    entry.label = next_label_++;
    if (use_wheel_) {
      entry.id = wheel_.schedule_after(
          sim::Duration::nanoseconds(delay),
          [](void* ctx, std::uint64_t arg) {
            static_cast<DiffDriver*>(ctx)->on_fire(arg);
          },
          this, entry.label);
    } else {
      entry.handle = sim_.schedule_after(
          sim::Duration::nanoseconds(delay),
          [this, label = entry.label] { on_fire(label); });
    }
    live_.push_back(entry);
  }

  void on_fire(std::uint64_t label) {
    log_.emplace_back(sim_.now().ns(), label);
    for (std::size_t i = 0; i < live_.size(); ++i) {
      if (live_[i].label == label) {
        live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    // Reschedule-on-fire chains: the callback-side RNG stream stays
    // aligned between the two runs exactly as long as fire order does.
    if (rng_callback_.chance(0.35)) schedule_timer(pick_delay(rng_callback_));
  }

  void mutate() {
    const int ops = 1 + static_cast<int>(rng_mutator_.uniform_u64(4));
    for (int i = 0; i < ops; ++i) {
      if (!live_.empty() && rng_mutator_.chance(0.4)) {
        const std::size_t idx = rng_mutator_.uniform_u64(live_.size());
        if (use_wheel_) {
          EXPECT_TRUE(wheel_.cancel(live_[idx].id));
        } else {
          live_[idx].handle.cancel();
        }
        live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(idx));
      } else {
        schedule_timer(pick_delay(rng_mutator_));
      }
    }
  }

  sim::Simulator sim_;
  sim::TimerWheel wheel_;
  bool use_wheel_;
  Rng rng_mutator_;
  Rng rng_callback_;
  std::uint64_t next_label_ = 0;
  std::vector<Entry> live_;
  FireLog log_;
};

TEST(TimerWheel, DifferentialFireOrderMatchesHeap) {
  for (const std::uint64_t seed : {7ULL, 77ULL, 0xBADC0FFEULL}) {
    DiffDriver heap(/*use_wheel=*/false, seed);
    heap.run();
    DiffDriver wheel(/*use_wheel=*/true, seed);
    wheel.run();

    ASSERT_GT(heap.log().size(), 100u) << "seed " << seed;
    ASSERT_EQ(heap.log().size(), wheel.log().size()) << "seed " << seed;
    for (std::size_t i = 0; i < heap.log().size(); ++i) {
      ASSERT_EQ(heap.log()[i], wheel.log()[i])
          << "divergence at fire #" << i << " (seed " << seed << ")";
    }
    // The workload's horizons must actually have crossed wheel levels.
    EXPECT_GT(wheel.wheel().cascades(), 0u);
    EXPECT_EQ(wheel.wheel().active(), 0u);
  }
}

struct FireCtx {
  sim::Simulator* sim = nullptr;
  FireLog fired;
};

void record_fire(void* ctx, std::uint64_t arg) {
  auto* c = static_cast<FireCtx*>(ctx);
  c->fired.emplace_back(c->sim->now().ns(), arg);
}

TEST(TimerWheel, QuantizesUpNeverEarlyAtMostOneTickLate) {
  sim::Simulator sim(1);
  sim::TimerWheel wheel(sim, {.tick = sim::Duration::microseconds(1)});
  FireCtx ctx{&sim, {}};

  // Deliberately scheduled out of deadline order: within one tick the
  // wheel must still fire by (raw deadline, seq).
  const std::int64_t deadlines[] = {999, 1, 1000, 2500, 1001, 1999, 2000};
  for (std::size_t i = 0; i < std::size(deadlines); ++i) {
    wheel.schedule_at(sim::TimePoint::from_ns(deadlines[i]), record_fire,
                      &ctx, i);
  }
  sim.run();

  ASSERT_EQ(ctx.fired.size(), std::size(deadlines));
  for (const auto& [at_ns, label] : ctx.fired) {
    const std::int64_t deadline = deadlines[label];
    EXPECT_GE(at_ns, deadline) << "fired early";
    EXPECT_LT(at_ns - deadline, 1000) << "more than one tick late";
    EXPECT_EQ(at_ns % 1000, 0) << "not on a tick boundary";
  }
  // Tick 1 (ns 1..1000) holds deadlines 1, 999, 1000 — raw-deadline order,
  // not schedule order. Then 1001, 1999, 2000 in tick 2; 2500 in tick 3.
  const std::vector<std::uint64_t> want = {1, 0, 2, 4, 5, 6, 3};
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(ctx.fired[i].second, want[i]) << "order mismatch at " << i;
  }
}

TEST(TimerWheel, DueNowRoundsToNextTick) {
  sim::Simulator sim(1);
  sim::TimerWheel wheel(sim, {.tick = sim::Duration::microseconds(1)});
  FireCtx ctx{&sim, {}};
  wheel.schedule_after(sim::Duration::zero(), record_fire, &ctx, 0);
  sim.run();
  ASSERT_EQ(ctx.fired.size(), 1u);
  EXPECT_EQ(ctx.fired[0].first, 1000);  // next boundary, never "now"
}

TEST(TimerWheel, CancellationGenerationReuse) {
  sim::Simulator sim(1);
  sim::TimerWheel wheel(sim, {.tick = sim::Duration::microseconds(1)});
  FireCtx ctx{&sim, {}};

  const auto a =
      wheel.schedule_after(sim::Duration::milliseconds(1), record_fire, &ctx, 1);
  EXPECT_TRUE(wheel.pending(a));
  EXPECT_TRUE(wheel.cancel(a));
  EXPECT_FALSE(wheel.cancel(a));  // idempotent
  EXPECT_FALSE(wheel.pending(a));

  const auto b =
      wheel.schedule_after(sim::Duration::milliseconds(1), record_fire, &ctx, 2);
  // The slab slot is recycled, the generation is not.
  EXPECT_EQ(a & 0xFFFFFFFFu, b & 0xFFFFFFFFu);
  EXPECT_NE(a, b);
  EXPECT_FALSE(wheel.cancel(a)) << "stale id must not kill the successor";
  EXPECT_TRUE(wheel.pending(b));

  sim.run();
  ASSERT_EQ(ctx.fired.size(), 1u);
  EXPECT_EQ(ctx.fired[0].second, 2u);
  EXPECT_FALSE(wheel.pending(b));
  EXPECT_FALSE(wheel.cancel(b));  // fired ids are stale too
  EXPECT_EQ(wheel.slab_capacity(), 1u);
  EXPECT_EQ(wheel.cancelled(), 1u);
  EXPECT_EQ(wheel.fired(), 1u);
}

TEST(TimerWheel, FarFutureCascadesFireExactly) {
  sim::Simulator sim(1);
  sim::TimerWheel wheel(sim, {.tick = sim::Duration::nanoseconds(1)});
  FireCtx ctx{&sim, {}};

  // One timer per wheel level, including exact cascade-boundary deadlines
  // (256^L ticks) and two past the 2^32-tick horizon.
  const std::int64_t deltas[] = {100,        256,           300,
                                 65'536,     70'000,        16'777'216,
                                 20'000'000, 4'294'967'296, 6'000'000'000};
  for (std::size_t i = 0; i < std::size(deltas); ++i) {
    wheel.schedule_after(sim::Duration::nanoseconds(deltas[i]), record_fire,
                         &ctx, i);
  }
  EXPECT_EQ(wheel.overflow_size(), 2u);
  sim.run();

  ASSERT_EQ(ctx.fired.size(), std::size(deltas));
  for (std::size_t i = 0; i < std::size(deltas); ++i) {
    EXPECT_EQ(ctx.fired[i].first, deltas[i]) << "timer " << i;
    EXPECT_EQ(ctx.fired[i].second, i) << "fire order";
  }
  EXPECT_GT(wheel.cascades(), 0u);
  EXPECT_EQ(wheel.overflow_size(), 0u);
  EXPECT_EQ(wheel.active(), 0u);
}

TEST(TimerWheel, OverflowBucketCancelAndRescan) {
  sim::Simulator sim(1);
  sim::TimerWheel wheel(sim, {.tick = sim::Duration::nanoseconds(1)});
  FireCtx ctx{&sim, {}};

  const auto near = wheel.schedule_after(sim::Duration::seconds(5),
                                         record_fire, &ctx, 0);
  // 10 s crosses two rescan boundaries: at ~4.29 s it is still beyond the
  // horizon (back to overflow), at ~8.59 s it lands on level 3.
  wheel.schedule_after(sim::Duration::seconds(10), record_fire, &ctx, 1);
  EXPECT_EQ(wheel.overflow_size(), 2u);
  EXPECT_TRUE(wheel.cancel(near));
  EXPECT_EQ(wheel.overflow_size(), 1u);

  sim.run();
  ASSERT_EQ(ctx.fired.size(), 1u);
  EXPECT_EQ(ctx.fired[0].first, 10'000'000'000);
  EXPECT_EQ(ctx.fired[0].second, 1u);
  EXPECT_EQ(wheel.overflow_size(), 0u);
}

TEST(TimerWheel, ScheduleCancelChurnIsAllocationFree) {
  sim::Simulator sim(1);
  sim::TimerWheel wheel(sim, {.tick = sim::Duration::microseconds(1)});
  FireCtx ctx{&sim, {}};

  for (int i = 0; i < 10'000; ++i) {
    const auto id = wheel.schedule_after(sim::Duration::microseconds(50),
                                         record_fire, &ctx, 0);
    ASSERT_TRUE(wheel.cancel(id));
  }
  // One slab slot recycled 10k times, and at most the single (stale)
  // anchor event ever reached the simulator heap.
  EXPECT_EQ(wheel.slab_capacity(), 1u);
  EXPECT_EQ(wheel.active(), 0u);
  EXPECT_EQ(wheel.cancelled(), 10'000u);
  EXPECT_LE(sim.events_pending(), 1u);
  sim.run();
  EXPECT_EQ(wheel.fired(), 0u);
  EXPECT_TRUE(ctx.fired.empty());
}

}  // namespace
