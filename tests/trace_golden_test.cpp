// Golden-trace determinism tests.
//
// The simulator executes same-instant events in scheduling order (the
// Simulator tie-break contract in src/sim/simulator.h), which makes every
// run bit-reproducible for a given seed. These tests lock that contract in
// at the observability layer: the *serialized trace stream* of a full
// figure-3 scenario run must be byte-identical across same-seed runs, and
// must diverge across different seeds (the per-packet CPU/latency jitter
// models all draw from the seeded RNG). Any future change that makes event
// ordering depend on unordered containers, pointer values, or wall-clock
// time breaks these tests immediately.
#include <gtest/gtest.h>

#include <string>

#include "obs/observability.h"
#include "scenario/scenarios.h"

namespace netco {
namespace {

/// Runs the figure-3 Central3 ping scenario under a ring-buffer trace sink
/// and returns the serialized (JSONL) trace stream.
std::string run_traced_ping(std::uint64_t seed) {
  obs::RingBufferSink sink(1 << 20);
  obs::ScopedTraceSink guard(sink);
  const auto report = scenario::measure_ping(
      scenario::ScenarioKind::kCentral3, /*count=*/5,
      sim::Duration::milliseconds(5), seed);
  EXPECT_GT(report.received, 0) << "scenario produced no traffic to trace";
  return sink.serialize();
}

TEST(GoldenTrace, SameSeedProducesByteIdenticalStreams) {
  const std::string first = run_traced_ping(7);
  const std::string second = run_traced_ping(7);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(GoldenTrace, StreamContainsTheFullLifecycle) {
  const std::string stream = run_traced_ping(7);
  // The combiner pipeline shows up end to end: replica forwards feeding
  // compare ingests that end in majority releases.
  EXPECT_NE(stream.find("\"ev\":\"replica.forward\""), std::string::npos);
  EXPECT_NE(stream.find("\"ev\":\"compare.ingest\""), std::string::npos);
  EXPECT_NE(stream.find("\"ev\":\"compare.release\""), std::string::npos);
  // Per-edge compare labels disambiguate the two trusted edges.
  EXPECT_NE(stream.find("\"src\":\"compare/netco-e0\""), std::string::npos);
}

TEST(GoldenTrace, DifferentSeedsDiverge) {
  // Host/controller/control-channel jitter all derive from the seed, so
  // two seeds must not produce the same stream. (If this ever fails, the
  // seed stopped reaching the component RNG splits.)
  EXPECT_NE(run_traced_ping(7), run_traced_ping(8));
}

TEST(GoldenTrace, DisabledTracerEmitsNothing) {
  obs::RingBufferSink sink;
  {
    obs::ScopedTraceSink guard(sink);
  }  // sink uninstalled again
  const auto report = scenario::measure_ping(
      scenario::ScenarioKind::kCentral3, /*count=*/2,
      sim::Duration::milliseconds(5), 3);
  EXPECT_GT(report.received, 0);
  EXPECT_EQ(sink.total_appended(), 0u);
}

}  // namespace
}  // namespace netco
