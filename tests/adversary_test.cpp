// Unit tests for the adversarial behaviour library (§II attack classes).
#include <gtest/gtest.h>

#include <vector>

#include "adversary/behaviors.h"
#include "controller/static_routing.h"
#include "device/network.h"
#include "net/headers.h"
#include "openflow/switch.h"

namespace netco::adversary {
namespace {

using device::Network;

class Probe : public device::Node {
 public:
  using Node::Node;
  void handle_packet(device::PortIndex, net::Packet p) override {
    received.push_back(std::move(p));
  }
  std::vector<net::Packet> received;
};

net::Packet udp_packet(std::uint32_t src_id, std::uint32_t dst_id) {
  std::vector<std::byte> payload(64, std::byte{0});
  return net::build_udp(
      net::EthernetHeader{.dst = net::MacAddress::from_id(dst_id),
                          .src = net::MacAddress::from_id(src_id)},
      std::nullopt,
      net::Ipv4Header{.src = net::Ipv4Address::from_id(src_id),
                      .dst = net::Ipv4Address::from_id(dst_id)},
      net::UdpHeader{.src_port = 1, .dst_port = 2}, payload);
}

/// sw with three probes: h0 (port 0), h1 (port 1), h2 (port 2); routes
/// id 2 → port 1.
struct Fixture {
  sim::Simulator sim;
  Network net{sim};
  openflow::OpenFlowSwitch& sw;
  Probe& h0;
  Probe& h1;
  Probe& h2;
  Fixture()
      : sw(net.add_node<openflow::OpenFlowSwitch>("sw")),
        h0(net.add_node<Probe>("h0")),
        h1(net.add_node<Probe>("h1")),
        h2(net.add_node<Probe>("h2")) {
    net.connect(sw, h0);
    net.connect(sw, h1);
    net.connect(sw, h2);
    controller::install_mac_route(sw, net::MacAddress::from_id(2), 1);
  }
};

TEST(Adversary, RerouteDivertsMatchingTraffic) {
  Fixture f;
  RerouteBehavior reroute(match_dl_dst(net::MacAddress::from_id(2)), 2);
  f.sw.set_interceptor(&reroute);
  f.h0.send(0, udp_packet(1, 2));
  f.sim.run();
  EXPECT_EQ(f.h1.received.size(), 0u);  // legitimate route starved
  EXPECT_EQ(f.h2.received.size(), 1u);  // diverted
  EXPECT_EQ(reroute.attack_stats().packets_attacked, 1u);
}

TEST(Adversary, RerouteLeavesOtherTrafficAlone) {
  Fixture f;
  controller::install_mac_route(f.sw, net::MacAddress::from_id(7), 2);
  RerouteBehavior reroute(match_dl_dst(net::MacAddress::from_id(2)), 2);
  f.sw.set_interceptor(&reroute);
  f.h0.send(0, udp_packet(1, 7));
  f.sim.run();
  EXPECT_EQ(f.h2.received.size(), 1u);  // normal route, not attack
  EXPECT_EQ(reroute.attack_stats().packets_attacked, 0u);
  EXPECT_EQ(reroute.attack_stats().packets_inspected, 1u);
}

TEST(Adversary, MirrorKeepsOriginalFlowing) {
  Fixture f;
  MirrorBehavior mirror(match_dl_dst(net::MacAddress::from_id(2)), 2);
  f.sw.set_interceptor(&mirror);
  f.h0.send(0, udp_packet(1, 2));
  f.sim.run();
  EXPECT_EQ(f.h1.received.size(), 1u);  // original delivered
  EXPECT_EQ(f.h2.received.size(), 1u);  // exfiltrated copy
  EXPECT_EQ(f.h1.received[0], f.h2.received[0]);
}

TEST(Adversary, ModifyRetagsVlan) {
  Fixture f;
  ModifyBehavior modify(match_all(), ModifyBehavior::retag_vlan(123));
  f.sw.set_interceptor(&modify);
  f.h0.send(0, udp_packet(1, 2));
  f.sim.run();
  ASSERT_EQ(f.h1.received.size(), 1u);
  const auto parsed = net::parse_packet(f.h1.received[0]);
  ASSERT_TRUE(parsed && parsed->vlan);
  EXPECT_EQ(parsed->vlan->vid, 123);
}

TEST(Adversary, ModifyRewritesDlDst) {
  Fixture f;
  controller::install_mac_route(f.sw, net::MacAddress::from_id(9), 2);
  ModifyBehavior modify(match_dl_dst(net::MacAddress::from_id(2)),
                        ModifyBehavior::rewrite_dl_dst(
                            net::MacAddress::from_id(9)));
  f.sw.set_interceptor(&modify);
  f.h0.send(0, udp_packet(1, 2));
  f.sim.run();
  // The rewritten packet follows the *new* destination's route.
  EXPECT_EQ(f.h1.received.size(), 0u);
  EXPECT_EQ(f.h2.received.size(), 1u);
}

TEST(Adversary, CorruptPayloadBreaksChecksum) {
  Fixture f;
  ModifyBehavior modify(match_all(), ModifyBehavior::corrupt_payload());
  f.sw.set_interceptor(&modify);
  f.h0.send(0, udp_packet(1, 2));
  f.sim.run();
  ASSERT_EQ(f.h1.received.size(), 1u);
  EXPECT_FALSE(net::checksums_valid(f.h1.received[0]));
}

TEST(Adversary, DropSilencesMatchingTraffic) {
  Fixture f;
  DropBehavior drop(match_nw_dst(net::Ipv4Address::from_id(2)));
  f.sw.set_interceptor(&drop);
  f.h0.send(0, udp_packet(1, 2));
  f.sim.run();
  EXPECT_EQ(f.h1.received.size(), 0u);
  EXPECT_EQ(drop.attack_stats().packets_attacked, 1u);
}

TEST(Adversary, FromPortRestrictsScope) {
  Fixture f;
  DropBehavior drop(from_port(2, match_all()));
  f.sw.set_interceptor(&drop);
  f.h0.send(0, udp_packet(1, 2));  // arrives on port 0: not dropped
  f.sim.run();
  EXPECT_EQ(f.h1.received.size(), 1u);
  f.h2.send(0, udp_packet(1, 2));  // arrives on port 2: dropped
  f.sim.run();
  EXPECT_EQ(f.h1.received.size(), 1u);
}

TEST(Adversary, CompositeFirstSwallowWins) {
  Fixture f;
  std::vector<std::unique_ptr<device::DatapathInterceptor>> chain;
  chain.push_back(std::make_unique<ModifyBehavior>(
      match_all(), ModifyBehavior::retag_vlan(7)));
  chain.push_back(std::make_unique<DropBehavior>(
      match_dl_dst(net::MacAddress::from_id(2))));
  CompositeBehavior composite(std::move(chain));
  f.sw.set_interceptor(&composite);
  f.h0.send(0, udp_packet(1, 2));
  f.sim.run();
  EXPECT_EQ(f.h1.received.size(), 0u);  // modified, then dropped
}

TEST(Adversary, ScheduledBehaviorOnlyInWindow) {
  Fixture f;
  auto inner = std::make_unique<DropBehavior>(match_all());
  ScheduledBehavior scheduled(
      std::move(inner),
      sim::TimePoint::origin() + sim::Duration::milliseconds(10),
      sim::TimePoint::origin() + sim::Duration::milliseconds(20));
  f.sw.set_interceptor(&scheduled);

  f.h0.send(0, udp_packet(1, 2));  // t≈0: before the window
  f.sim.run();
  EXPECT_EQ(f.h1.received.size(), 1u);

  f.sim.schedule_at(sim::TimePoint::origin() + sim::Duration::milliseconds(15),
                    [&] { f.h0.send(0, udp_packet(1, 2)); });
  f.sim.run();
  EXPECT_EQ(f.h1.received.size(), 1u);  // dropped inside the window

  f.sim.schedule_at(sim::TimePoint::origin() + sim::Duration::milliseconds(30),
                    [&] { f.h0.send(0, udp_packet(1, 2)); });
  f.sim.run();
  EXPECT_EQ(f.h1.received.size(), 2u);  // window over
}

TEST(Adversary, DosFlooderEmitsAtConfiguredRate) {
  Fixture f;
  DosFlooder::Config config;
  config.out_port = 1;
  config.packets_per_sec = 10'000;
  config.packet_bytes = 100;
  config.dst_mac = net::MacAddress::from_id(2);
  config.src_mac = net::MacAddress::from_id(1);
  DosFlooder flooder(f.sw, config);
  flooder.start();
  f.sim.run_until(sim::TimePoint::origin() + sim::Duration::milliseconds(100));
  flooder.stop();
  f.sim.run();
  EXPECT_NEAR(static_cast<double>(flooder.emitted()), 1000.0, 10.0);
  EXPECT_NEAR(static_cast<double>(f.h1.received.size()), 1000.0, 10.0);
}

TEST(Adversary, DosFloodPacketsAreDistinct) {
  // Every flood packet must differ (rolling sequence) — otherwise a naive
  // duplicate filter would absorb the flood for free.
  Fixture f;
  DosFlooder::Config config;
  config.out_port = 1;
  config.packets_per_sec = 1'000;
  config.packet_bytes = 100;
  config.dst_mac = net::MacAddress::from_id(2);
  config.src_mac = net::MacAddress::from_id(1);
  DosFlooder flooder(f.sw, config);
  flooder.start();
  f.sim.run_until(sim::TimePoint::origin() + sim::Duration::milliseconds(10));
  flooder.stop();
  f.sim.run();
  ASSERT_GE(f.h1.received.size(), 2u);
  EXPECT_NE(f.h1.received[0], f.h1.received[1]);
}

}  // namespace
}  // namespace netco::adversary
