// Trace-semantics tests: the packet-lifecycle stream emitted by the
// compare element (and the trusted hub) is a faithful, attributable record
// of §IV behaviour:
//
//   T1  every ingested packet id ends in exactly one terminal record
//       (release / evict_timeout / evict_capacity / evict_quota);
//   T2  copies arriving after the release trace as `late` and never cause
//       a second `release`;
//   T3  under kFirstCopy, a disagreement traces a `mismatch` against the
//       replica that failed to confirm — the correct one;
//   T4  same-port duplicates trace as `duplicate` (§IV case 2);
//   T5  adversarially modified copies (ModifyBehavior, §IV case 1/§II-3)
//       show up as minority evictions in an end-to-end figure-3 run while
//       the majority traffic still releases.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "adversary/behaviors.h"
#include "device/network.h"
#include "host/ping.h"
#include "net/headers.h"
#include "netco/compare_core.h"
#include "netco/hub.h"
#include "obs/observability.h"
#include "scenario/scenarios.h"
#include "topo/figure3.h"

namespace netco::core {
namespace {

net::Packet numbered_packet(std::uint32_t n, std::uint8_t fill = 0) {
  std::vector<std::byte> data(64, std::byte{fill});
  return net::build_udp(
      net::EthernetHeader{.dst = net::MacAddress::from_id(2),
                         .src = net::MacAddress::from_id(1)},
      std::nullopt,
      net::Ipv4Header{.src = net::Ipv4Address::from_id(1),
                      .dst = net::Ipv4Address::from_id(2),
                      .identification = static_cast<std::uint16_t>(n)},
      net::UdpHeader{.src_port = static_cast<std::uint16_t>(n >> 16),
                     .dst_port = 5001},
      data);
}

sim::TimePoint at_ms(std::int64_t ms) {
  return sim::TimePoint::origin() + sim::Duration::milliseconds(ms);
}

bool is_terminal(obs::TraceEvent event) {
  switch (event) {
    case obs::TraceEvent::kCompareRelease:
    case obs::TraceEvent::kCompareEvictTimeout:
    case obs::TraceEvent::kCompareEvictCapacity:
    case obs::TraceEvent::kCompareEvictQuota:
      return true;
    default:
      return false;
  }
}

/// packet id → number of terminal records in the sink.
std::map<std::uint64_t, int> terminal_counts(const obs::RingBufferSink& sink) {
  std::map<std::uint64_t, int> out;
  for (const auto& record : sink.records()) {
    if (record.event == obs::TraceEvent::kCompareIngest) {
      out.try_emplace(record.packet_id, 0);  // every ingested id participates
    } else if (is_terminal(record.event)) {
      ++out[record.packet_id];
    }
  }
  return out;
}

int count_events(const obs::RingBufferSink& sink, obs::TraceEvent event) {
  int n = 0;
  for (const auto& record : sink.records()) {
    if (record.event == event) ++n;
  }
  return n;
}

// T1 — release, timeout, and straggler-finalize paths.
TEST(TraceSemantics, EveryIngestedIdEndsInExactlyOneTerminal) {
  obs::RingBufferSink sink;
  obs::ScopedTraceSink guard(sink);
  CompareCore core(CompareConfig{.k = 3});

  const auto full = numbered_packet(1);      // all three replicas deliver
  const auto majority = numbered_packet(2);  // two deliver, one withholds
  const auto minority = numbered_packet(3);  // fabricated singleton
  core.ingest(0, full, at_ms(0));
  core.ingest(1, full, at_ms(0));
  core.ingest(2, full, at_ms(1));  // late copy of a released packet
  core.ingest(0, majority, at_ms(1));
  core.ingest(2, majority, at_ms(2));
  core.ingest(1, minority, at_ms(2));
  core.sweep(at_ms(100));  // everything past the hold timeout

  const auto counts = terminal_counts(sink);
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& [id, terminals] : counts) {
    EXPECT_EQ(terminals, 1) << "packet " << id;
  }
  EXPECT_EQ(count_events(sink, obs::TraceEvent::kCompareRelease), 2);
  EXPECT_EQ(count_events(sink, obs::TraceEvent::kCompareEvictTimeout), 1);
}

// T1 — capacity-cleanup and quota evictions are terminals too.
TEST(TraceSemantics, CapacityAndQuotaEvictionsAreTerminals) {
  obs::RingBufferSink sink;
  obs::ScopedTraceSink guard(sink);
  CompareConfig config{.k = 3};
  config.hold_timeout = sim::Duration::seconds(10);  // timeouts out of play
  config.cache_capacity = 8;
  config.cleanup_low_water = 0.5;
  config.per_replica_quota = 6;
  CompareCore core(config);

  // 9 distinct singletons alternating replicas: the 9th ingest overflows
  // the capacity and triggers a cleanup pass.
  for (std::uint32_t n = 0; n < 9; ++n) {
    core.ingest(static_cast<int>(n % 3), numbered_packet(100 + n), at_ms(1));
  }
  EXPECT_GT(core.stats().evicted_capacity, 0u);
  EXPECT_EQ(count_events(sink, obs::TraceEvent::kCompareEvictCapacity),
            static_cast<int>(core.stats().evicted_capacity));

  // Quota: a single replica flooding unique packets evicts its own oldest
  // singleton once past per_replica_quota.
  obs::RingBufferSink quota_sink;
  obs::ScopedTraceSink quota_guard(quota_sink);
  CompareConfig isolated{.k = 3};
  isolated.hold_timeout = sim::Duration::seconds(10);
  isolated.per_replica_quota = 2;
  CompareCore flooded(isolated);
  for (std::uint32_t n = 0; n < 3; ++n) {
    flooded.ingest(0, numbered_packet(200 + n), at_ms(1));
  }
  EXPECT_EQ(flooded.stats().evicted_quota, 1u);
  const auto records = quota_sink.records();
  int quota_terminals = 0;
  for (const auto& record : records) {
    if (record.event == obs::TraceEvent::kCompareEvictQuota) {
      ++quota_terminals;
      EXPECT_EQ(record.replica, 0);  // attributed to the flooding replica
    }
  }
  EXPECT_EQ(quota_terminals, 1);
}

// T2 — late copies trace as `late`, never as a second `release`.
TEST(TraceSemantics, LateAfterReleaseNeverDoubleReleases) {
  obs::RingBufferSink sink;
  obs::ScopedTraceSink guard(sink);
  CompareCore core(CompareConfig{.k = 3});

  const auto p = numbered_packet(7);
  core.ingest(0, p, at_ms(0));
  ASSERT_TRUE(core.ingest(1, p, at_ms(0)).has_value());
  EXPECT_FALSE(core.ingest(2, p, at_ms(1)).has_value());

  EXPECT_EQ(count_events(sink, obs::TraceEvent::kCompareRelease), 1);
  EXPECT_EQ(count_events(sink, obs::TraceEvent::kCompareLate), 1);
  for (const auto& record : sink.records()) {
    if (record.event == obs::TraceEvent::kCompareLate) {
      EXPECT_EQ(record.replica, 2);  // the straggler, by name
      EXPECT_EQ(record.packet_id, p.content_hash());
    }
  }
}

// T3 — kFirstCopy: the mismatch record names the replica that disagreed.
TEST(TraceSemantics, FirstCopyMismatchAttributesTheDisagreeingReplica) {
  obs::RingBufferSink sink;
  obs::ScopedTraceSink guard(sink);
  CompareConfig config{.k = 2};
  config.policy = ReleasePolicy::kFirstCopy;
  CompareCore core(config);

  const auto honest = numbered_packet(1, /*fill=*/0x00);
  auto tampered = honest;  // replica 1 modifies the payload in flight
  tampered.bytes_mut().back() = std::byte{0xEE};

  ASSERT_TRUE(core.ingest(0, honest, at_ms(0)).has_value());
  ASSERT_TRUE(core.ingest(1, tampered, at_ms(0)).has_value());
  core.sweep(at_ms(100));

  EXPECT_EQ(core.stats().mismatch_detected, 2u);
  std::map<std::uint64_t, std::int32_t> blamed;
  for (const auto& record : sink.records()) {
    if (record.event == obs::TraceEvent::kCompareMismatch) {
      blamed[record.packet_id] = record.replica;
    }
  }
  ASSERT_EQ(blamed.size(), 2u);
  // The honest packet was confirmed by replica 0 only → replica 1 is the
  // suspect; the tampered copy implicates replica 0 symmetrically (an
  // administrator resolves the pair — detection, not prevention).
  EXPECT_EQ(blamed.at(honest.content_hash()), 1);
  EXPECT_EQ(blamed.at(tampered.content_hash()), 0);
}

// T4 — §IV case 2: same-port duplicates are traced and attributed.
TEST(TraceSemantics, SamePortDuplicateTraced) {
  obs::RingBufferSink sink;
  obs::ScopedTraceSink guard(sink);
  CompareCore core(CompareConfig{.k = 3});

  const auto p = numbered_packet(9);
  core.ingest(1, p, at_ms(0));
  core.ingest(1, p, at_ms(0));
  core.ingest(1, p, at_ms(1));

  EXPECT_EQ(count_events(sink, obs::TraceEvent::kCompareDuplicate), 2);
  for (const auto& record : sink.records()) {
    if (record.event == obs::TraceEvent::kCompareDuplicate) {
      EXPECT_EQ(record.replica, 1);
    }
  }
}

// Hub lifecycle records carry the same stable packet id the compare sees.
TEST(TraceSemantics, HubTracesIngressAndMergeWithStableId) {
  obs::RingBufferSink sink;
  obs::ScopedTraceSink guard(sink);
  sim::Simulator sim;
  device::Network net(sim);
  struct Probe : device::Node {
    using Node::Node;
    void handle_packet(device::PortIndex, net::Packet) override {}
  };
  auto& hub = net.add_node<Hub>("hub0");
  auto& up = net.add_node<Probe>("up");
  auto& r1 = net.add_node<Probe>("r1");
  auto& r2 = net.add_node<Probe>("r2");
  net.connect(hub, up);  // port 0 = upstream
  net.connect(hub, r1);
  net.connect(hub, r2);

  const auto packet = numbered_packet(42);
  up.send(0, packet);
  sim.run();
  r2.send(0, packet);
  sim.run();

  int ingress = 0, merge = 0;
  for (const auto& record : sink.records()) {
    if (record.event == obs::TraceEvent::kHubIngress) {
      ++ingress;
      EXPECT_EQ(record.packet_id, packet.content_hash());
      EXPECT_EQ(record.component, "hub0");
    }
    if (record.event == obs::TraceEvent::kHubMerge) {
      ++merge;
      EXPECT_EQ(record.packet_id, packet.content_hash());
      EXPECT_EQ(record.replica, 1);  // came back via port 2 → replica 1
    }
  }
  EXPECT_EQ(ingress, 1);
  EXPECT_EQ(merge, 1);
}

// T5 — §IV cases via an adversary driver: a modifying replica's copies die
// as minority evictions while the honest majority still releases.
TEST(TraceSemantics, ModifyingReplicaShowsAsMinorityEvictionsEndToEnd) {
  obs::RingBufferSink sink(1 << 20);
  obs::ScopedTraceSink guard(sink);

  topo::Figure3Topology topo(
      scenario::make_options(scenario::ScenarioKind::kCentral3, 11));
  adversary::ModifyBehavior corrupt(adversary::match_all(),
                                    adversary::ModifyBehavior::corrupt_payload());
  topo.combiner().replicas[0]->set_interceptor(&corrupt);

  host::PingConfig config;
  config.dst_mac = topo.h2().mac();
  config.dst_ip = topo.h2().ip();
  config.count = 10;
  config.interval = sim::Duration::milliseconds(2);
  config.timeout = sim::Duration::milliseconds(200);
  host::IcmpPinger pinger(topo.h1(), config);
  pinger.start();
  const auto deadline = topo.simulator().now() + sim::Duration::seconds(3);
  while (!pinger.finished() && topo.simulator().now() < deadline) {
    topo.simulator().run_for(sim::Duration::milliseconds(10));
  }
  // Let the compare sweep retire the corrupted singletons.
  topo.simulator().run_for(sim::Duration::milliseconds(100));

  EXPECT_EQ(pinger.report().received, 10);  // 2-of-3 quorum still held
  EXPECT_GT(corrupt.attack_stats().packets_attacked, 0u);
  // Every corrupted copy is a singleton nobody confirms → §IV case 1.
  EXPECT_GT(count_events(sink, obs::TraceEvent::kCompareEvictTimeout), 0);
  EXPECT_GT(count_events(sink, obs::TraceEvent::kCompareRelease), 0);
}

}  // namespace
}  // namespace netco::core
