// Unit tests for the host stack: demux, MAC filtering, CPU model,
// ICMP echo handling, and the iperf-style UDP sender/sink.
#include <gtest/gtest.h>

#include <vector>

#include "device/network.h"
#include "host/host.h"
#include "host/ping.h"
#include "host/udp_app.h"
#include "net/headers.h"

namespace netco::host {
namespace {

using device::Network;

/// A deterministic host profile for timing-sensitive assertions.
HostProfile flat_profile() {
  HostProfile p;
  p.service_jitter = 0.0;
  return p;
}

struct TwoHosts {
  sim::Simulator sim;
  Network net{sim};
  Host& a;
  Host& b;
  TwoHosts()
      : a(net.add_node<Host>("a", net::MacAddress::from_id(1),
                             net::Ipv4Address::from_id(1), flat_profile())),
        b(net.add_node<Host>("b", net::MacAddress::from_id(2),
                             net::Ipv4Address::from_id(2), flat_profile())) {
    net.connect(a, b);
  }
};

net::Packet udp_to(const Host& src, const Host& dst, std::uint16_t port,
                   std::size_t payload_bytes = 32) {
  std::vector<std::byte> payload(payload_bytes, std::byte{0x7E});
  return net::build_udp(
      net::EthernetHeader{.dst = dst.mac(), .src = src.mac()}, std::nullopt,
      net::Ipv4Header{.src = src.ip(), .dst = dst.ip()},
      net::UdpHeader{.src_port = 9, .dst_port = port}, payload);
}

TEST(Host, DeliversUdpToBoundPort) {
  TwoHosts t;
  int delivered = 0;
  t.b.bind_udp(5001, [&](const net::ParsedPacket&, const net::Packet&) {
    ++delivered;
  });
  t.a.transmit(udp_to(t.a, t.b, 5001));
  t.sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(t.b.stats().rx_packets, 1u);
}

TEST(Host, UnboundPortSilentlyIgnored) {
  TwoHosts t;
  t.a.transmit(udp_to(t.a, t.b, 4444));
  t.sim.run();
  EXPECT_EQ(t.b.stats().rx_packets, 1u);  // accepted, no handler
}

TEST(Host, StrayMacFilteredAndCounted) {
  TwoHosts t;
  net::Packet p = udp_to(t.a, t.b, 5001);
  net::set_dl_dst(p, net::MacAddress::from_id(99));  // not b's MAC
  t.a.transmit(p);
  t.sim.run();
  EXPECT_EQ(t.b.stats().rx_stray, 1u);
  EXPECT_EQ(t.b.stats().rx_packets, 0u);
}

TEST(Host, BroadcastAccepted) {
  TwoHosts t;
  int delivered = 0;
  t.b.bind_udp(5001, [&](const net::ParsedPacket&, const net::Packet&) {
    ++delivered;
  });
  net::Packet p = udp_to(t.a, t.b, 5001);
  net::set_dl_dst(p, net::MacAddress::broadcast());
  net::fix_checksums(p);
  t.a.transmit(p);
  t.sim.run();
  EXPECT_EQ(delivered, 1);
}

TEST(Host, BadChecksumDropped) {
  TwoHosts t;
  int delivered = 0;
  t.b.bind_udp(5001, [&](const net::ParsedPacket&, const net::Packet&) {
    ++delivered;
  });
  net::Packet p = udp_to(t.a, t.b, 5001);
  net::corrupt_byte(p, p.size() - 1);  // payload corrupted, checksum stale
  t.a.transmit(p);
  t.sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(t.b.stats().rx_bad_checksum, 1u);
}

TEST(Host, RxTapSeesStrays) {
  TwoHosts t;
  int tapped = 0;
  t.b.set_rx_tap([&](const net::Packet&) { ++tapped; });
  net::Packet p = udp_to(t.a, t.b, 5001);
  net::set_dl_dst(p, net::MacAddress::from_id(99));
  t.a.transmit(p);
  t.sim.run();
  EXPECT_EQ(tapped, 1);
}

TEST(Host, AutoAnswersEchoRequests) {
  TwoHosts t;
  int replies = 0;
  t.a.set_icmp_reply_handler(
      [&](const net::ParsedPacket&, const net::Packet&) { ++replies; });
  std::vector<std::byte> payload(56, std::byte{0x11});
  t.a.transmit(net::build_icmp_echo(
      net::EthernetHeader{.dst = t.b.mac(), .src = t.a.mac()}, std::nullopt,
      net::Ipv4Header{.src = t.a.ip(), .dst = t.b.ip()},
      net::IcmpEchoHeader{.type = net::kIcmpEchoRequest, .id = 3, .seq = 0},
      payload));
  t.sim.run();
  EXPECT_EQ(t.b.stats().icmp_echo_requests, 1u);
  EXPECT_EQ(replies, 1);
}

TEST(Host, EchoReplyPreservesPayloadAndIds) {
  TwoHosts t;
  net::Packet reply_packet;
  t.a.set_icmp_reply_handler(
      [&](const net::ParsedPacket&, const net::Packet& p) { reply_packet = p; });
  std::vector<std::byte> payload(24, std::byte{0x3C});
  t.a.transmit(net::build_icmp_echo(
      net::EthernetHeader{.dst = t.b.mac(), .src = t.a.mac()}, std::nullopt,
      net::Ipv4Header{.src = t.a.ip(), .dst = t.b.ip()},
      net::IcmpEchoHeader{.type = net::kIcmpEchoRequest, .id = 5, .seq = 9},
      payload));
  t.sim.run();
  const auto parsed = net::parse_packet(reply_packet);
  ASSERT_TRUE(parsed && parsed->icmp);
  EXPECT_EQ(parsed->icmp->type, net::kIcmpEchoReply);
  EXPECT_EQ(parsed->icmp->id, 5);
  EXPECT_EQ(parsed->icmp->seq, 9);
  EXPECT_EQ(reply_packet.size() - parsed->payload_offset, 24u);
  EXPECT_EQ(reply_packet.u8(parsed->payload_offset), 0x3C);
}

TEST(Host, CpuJobsRunFifoWithCosts) {
  sim::Simulator sim;
  Network net(sim);
  auto& h = net.add_node<Host>("h", net::MacAddress::from_id(1),
                               net::Ipv4Address::from_id(1), flat_profile());
  std::vector<std::int64_t> done_at;
  h.cpu_submit(sim::Duration::microseconds(10),
               [&] { done_at.push_back(sim.now().ns()); });
  h.cpu_submit(sim::Duration::microseconds(20),
               [&] { done_at.push_back(sim.now().ns()); });
  sim.run();
  ASSERT_EQ(done_at.size(), 2u);
  EXPECT_EQ(done_at[0], 10'000);
  EXPECT_EQ(done_at[1], 30'000);
}

TEST(Host, RxBacklogHysteresisDropsBursts) {
  sim::Simulator sim;
  Network net(sim);
  HostProfile slow = flat_profile();
  slow.rx_cost = sim::Duration::milliseconds(10);
  slow.rx_backlog = 4;
  auto& a = net.add_node<Host>("a", net::MacAddress::from_id(1),
                               net::Ipv4Address::from_id(1), flat_profile());
  auto& b = net.add_node<Host>("b", net::MacAddress::from_id(2),
                               net::Ipv4Address::from_id(2), slow);
  net.connect(a, b);

  for (int i = 0; i < 10; ++i) a.transmit(udp_to(a, b, 5001));
  sim.run();
  // 4 admitted before overflow; then drop until drained to 2 — with all
  // arrivals nearly simultaneous, everything after the 4th dies.
  EXPECT_EQ(b.stats().rx_packets, 4u);
  EXPECT_EQ(b.stats().rx_backlog_drops, 6u);
}

TEST(Host, IpIdMonotone) {
  sim::Simulator sim;
  Network net(sim);
  auto& h = net.add_node<Host>("h", net::MacAddress::from_id(1),
                               net::Ipv4Address::from_id(1));
  const auto first = h.next_ip_id();
  EXPECT_EQ(h.next_ip_id(), static_cast<std::uint16_t>(first + 1));
}

// --- UDP apps ---------------------------------------------------------------

TEST(UdpApps, SenderPacesAtConfiguredRate) {
  TwoHosts t;
  UdpSenderConfig config;
  config.dst_mac = t.b.mac();
  config.dst_ip = t.b.ip();
  config.rate = DataRate::megabits_per_sec(10);
  config.payload_bytes = 1250;  // 10 Mb/s / 10 kb = 1000 datagrams/s
  UdpSender sender(t.a, config);
  UdpSink sink(t.b, config.dst_port);

  sender.start();
  t.sim.run_until(sim::TimePoint::origin() + sim::Duration::seconds(1));
  sender.stop();
  t.sim.run_for(sim::Duration::milliseconds(10));
  EXPECT_NEAR(static_cast<double>(sender.stats().datagrams_sent), 1000.0, 20.0);
  const auto report = sink.report();
  EXPECT_EQ(report.lost, 0u);
  EXPECT_NEAR(report.goodput_mbps, 10.0, 0.5);
}

TEST(UdpApps, SinkCountsDuplicates) {
  TwoHosts t;
  UdpSink sink(t.b, 5001);
  // Build one sender datagram and deliver it twice.
  UdpSenderConfig config;
  config.dst_mac = t.b.mac();
  config.dst_ip = t.b.ip();
  config.dst_port = 5001;
  config.rate = DataRate::megabits_per_sec(1);
  UdpSender sender(t.a, config);
  sender.start();
  t.sim.run_until(sim::TimePoint::origin() + sim::Duration::milliseconds(1));
  sender.stop();
  t.sim.run();
  ASSERT_EQ(sink.report().unique_received, 1u);

  // Replay the same bytes: counted as duplicate, not as new data.
  // (Simulate by sending seq 0 again through a fresh sender with the same
  // sequence space.)
  UdpSender replay(t.a, config);
  replay.start();
  t.sim.run_for(sim::Duration::milliseconds(1));
  replay.stop();
  t.sim.run();
  const auto report = sink.report();
  EXPECT_EQ(report.unique_received, 1u);
  EXPECT_GE(report.duplicates, 1u);
}

TEST(UdpApps, SinkLossAccounting) {
  // Send 10 datagrams, drop 3 in the middle via a blocked period: emulate
  // by delivering crafted datagrams directly with gaps in the sequence.
  TwoHosts t;
  UdpSink sink(t.b, 5001);
  auto craft = [&](std::uint32_t seq) {
    std::vector<std::byte> payload(16, std::byte{0});
    for (int i = 0; i < 4; ++i)
      payload[static_cast<std::size_t>(i)] =
          static_cast<std::byte>((seq >> (24 - 8 * i)) & 0xFF);
    return net::build_udp(
        net::EthernetHeader{.dst = t.b.mac(), .src = t.a.mac()}, std::nullopt,
        net::Ipv4Header{.src = t.a.ip(),
                        .dst = t.b.ip(),
                        .identification = static_cast<std::uint16_t>(seq)},
        net::UdpHeader{.src_port = 9, .dst_port = 5001}, payload);
  };
  for (std::uint32_t seq : {0u, 1u, 2u, 6u, 7u, 8u, 9u}) {
    t.a.transmit(craft(seq));
  }
  t.sim.run();
  const auto report = sink.report();
  EXPECT_EQ(report.expected, 10u);
  EXPECT_EQ(report.unique_received, 7u);
  EXPECT_EQ(report.lost, 3u);
  EXPECT_NEAR(report.loss_rate, 0.3, 1e-9);
}

TEST(UdpApps, ResetBaselinesSequenceSpace) {
  TwoHosts t;
  UdpSenderConfig config;
  config.dst_mac = t.b.mac();
  config.dst_ip = t.b.ip();
  config.rate = DataRate::megabits_per_sec(10);
  UdpSender sender(t.a, config);
  UdpSink sink(t.b, config.dst_port);
  sender.start();
  t.sim.run_until(sim::TimePoint::origin() + sim::Duration::milliseconds(100));
  sink.reset();
  t.sim.run_until(sim::TimePoint::origin() + sim::Duration::milliseconds(200));
  sender.stop();
  t.sim.run_for(sim::Duration::milliseconds(10));
  // No false loss from the pre-reset sequence numbers.
  EXPECT_EQ(sink.report().lost, 0u);
}

// --- Pinger -----------------------------------------------------------------

TEST(Pinger, MeasuresAllCycles) {
  TwoHosts t;
  PingConfig config;
  config.dst_mac = t.b.mac();
  config.dst_ip = t.b.ip();
  config.count = 10;
  config.interval = sim::Duration::milliseconds(1);
  IcmpPinger pinger(t.a, config);
  bool done = false;
  pinger.start([&] { done = true; });
  t.sim.run();
  EXPECT_TRUE(done);
  const auto report = pinger.report();
  EXPECT_EQ(report.transmitted, 10);
  EXPECT_EQ(report.received, 10);
  EXPECT_GT(report.min_ms, 0.0);
  // Epsilon absorbs summation rounding when all samples are identical.
  EXPECT_LE(report.min_ms, report.avg_ms + 1e-9);
  EXPECT_LE(report.avg_ms, report.max_ms + 1e-9);
  EXPECT_EQ(report.rtts_ms.size(), 10u);
}

TEST(Pinger, TimeoutCountsAsLoss) {
  sim::Simulator sim;
  Network net(sim);
  auto& a = net.add_node<Host>("a", net::MacAddress::from_id(1),
                               net::Ipv4Address::from_id(1), flat_profile());
  // No peer: requests vanish into a stub node.
  struct Blackhole : device::Node {
    using Node::Node;
    void handle_packet(device::PortIndex, net::Packet) override {}
  };
  auto& hole = net.add_node<Blackhole>("hole");
  net.connect(a, hole);

  PingConfig config;
  config.dst_mac = net::MacAddress::from_id(2);
  config.dst_ip = net::Ipv4Address::from_id(2);
  config.count = 5;
  config.interval = sim::Duration::milliseconds(1);
  config.timeout = sim::Duration::milliseconds(50);
  IcmpPinger pinger(a, config);
  pinger.start();
  sim.run();
  EXPECT_TRUE(pinger.finished());
  const auto report = pinger.report();
  EXPECT_EQ(report.transmitted, 5);
  EXPECT_EQ(report.received, 0);
}

}  // namespace
}  // namespace netco::host
