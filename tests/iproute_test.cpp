// Tests for the IP routing substrate (LPM, LegacyRouter) and the legacy
// combiner — the paper-conclusion extension of NetCo to non-OpenFlow
// routers.
#include <gtest/gtest.h>

#include <vector>

#include "adversary/behaviors.h"
#include "device/network.h"
#include "host/host.h"
#include "host/ping.h"
#include "iproute/legacy_router.h"
#include "iproute/lpm.h"
#include "netco/legacy_combiner.h"

namespace netco::iproute {
namespace {

using device::Network;

// --- LPM ---------------------------------------------------------------------

TEST(Lpm, LongestPrefixWins) {
  LpmTable<int> table;
  table.insert(net::Ipv4Address::from_octets(10, 0, 0, 0), 8, 1);
  table.insert(net::Ipv4Address::from_octets(10, 1, 0, 0), 16, 2);
  table.insert(net::Ipv4Address::from_octets(10, 1, 2, 0), 24, 3);

  EXPECT_EQ(table.lookup(net::Ipv4Address::from_octets(10, 9, 9, 9)), 1);
  EXPECT_EQ(table.lookup(net::Ipv4Address::from_octets(10, 1, 9, 9)), 2);
  EXPECT_EQ(table.lookup(net::Ipv4Address::from_octets(10, 1, 2, 9)), 3);
  EXPECT_FALSE(
      table.lookup(net::Ipv4Address::from_octets(11, 0, 0, 1)).has_value());
}

TEST(Lpm, DefaultRouteCatchesAll) {
  LpmTable<int> table;
  table.insert(net::Ipv4Address{}, 0, 42);
  EXPECT_EQ(table.lookup(net::Ipv4Address::from_octets(203, 0, 113, 5)), 42);
}

TEST(Lpm, HostRouteExact) {
  LpmTable<int> table;
  table.insert(net::Ipv4Address::from_octets(10, 0, 0, 7), 32, 7);
  EXPECT_EQ(table.lookup(net::Ipv4Address::from_octets(10, 0, 0, 7)), 7);
  EXPECT_FALSE(
      table.lookup(net::Ipv4Address::from_octets(10, 0, 0, 8)).has_value());
}

TEST(Lpm, InsertReplacesAndRemoveWorks) {
  LpmTable<int> table;
  table.insert(net::Ipv4Address::from_octets(10, 0, 0, 0), 8, 1);
  table.insert(net::Ipv4Address::from_octets(10, 0, 0, 0), 8, 9);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookup(net::Ipv4Address::from_octets(10, 1, 1, 1)), 9);
  EXPECT_TRUE(table.remove(net::Ipv4Address::from_octets(10, 0, 0, 0), 8));
  EXPECT_FALSE(table.remove(net::Ipv4Address::from_octets(10, 0, 0, 0), 8));
  EXPECT_FALSE(
      table.lookup(net::Ipv4Address::from_octets(10, 1, 1, 1)).has_value());
}

TEST(Lpm, MaskComputation) {
  EXPECT_EQ(LpmTable<int>::mask_of(0), 0u);
  EXPECT_EQ(LpmTable<int>::mask_of(8), 0xFF000000u);
  EXPECT_EQ(LpmTable<int>::mask_of(24), 0xFFFFFF00u);
  EXPECT_EQ(LpmTable<int>::mask_of(32), 0xFFFFFFFFu);
}

// --- LegacyRouter -------------------------------------------------------------

/// h1 — router — h2 with /24 routes on both interfaces.
struct RouterFixture {
  sim::Simulator sim;
  Network net{sim};
  host::Host& h1;
  host::Host& h2;
  LegacyRouter& router;

  RouterFixture()
      : h1(net.add_node<host::Host>(
            "h1", net::MacAddress::from_id(1),
            net::Ipv4Address::from_octets(10, 0, 1, 1))),
        h2(net.add_node<host::Host>(
            "h2", net::MacAddress::from_id(2),
            net::Ipv4Address::from_octets(10, 0, 2, 1))),
        router(net.add_node<LegacyRouter>("rt")) {
    router.add_interface(
        Interface{.mac = net::MacAddress::from_id(100),
                  .ip = net::Ipv4Address::from_octets(10, 0, 1, 254)});
    router.add_interface(
        Interface{.mac = net::MacAddress::from_id(101),
                  .ip = net::Ipv4Address::from_octets(10, 0, 2, 254)});
    net.connect(router, h1);
    net.connect(router, h2);
    router.add_route(net::Ipv4Address::from_octets(10, 0, 1, 0), 24,
                     NextHop{.port = 0, .next_mac = h1.mac()});
    router.add_route(net::Ipv4Address::from_octets(10, 0, 2, 0), 24,
                     NextHop{.port = 1, .next_mac = h2.mac()});
  }

  /// A UDP datagram from h1 addressed (L3) to h2, L2 to the router.
  net::Packet h1_to_h2(std::uint8_t ttl = 64) {
    std::vector<std::byte> payload(32, std::byte{0x5A});
    return net::build_udp(
        net::EthernetHeader{.dst = router.interfaces()[0].mac,
                            .src = h1.mac()},
        std::nullopt,
        net::Ipv4Header{.src = h1.ip(), .dst = h2.ip(), .ttl = ttl},
        net::UdpHeader{.src_port = 9, .dst_port = 5001}, payload);
  }
};

TEST(LegacyRouter, ForwardsWithL2RewriteAndTtlDecrement) {
  RouterFixture f;
  net::Packet seen;
  f.h2.set_rx_tap([&](const net::Packet& p) { seen = p; });
  f.h1.transmit(f.h1_to_h2(64));
  f.sim.run();
  EXPECT_EQ(f.router.router_stats().forwarded, 1u);
  const auto parsed = net::parse_packet(seen);
  ASSERT_TRUE(parsed && parsed->ipv4);
  EXPECT_EQ(parsed->eth.src, f.router.interfaces()[1].mac);
  EXPECT_EQ(parsed->eth.dst, f.h2.mac());
  EXPECT_EQ(parsed->ipv4->ttl, 63);
  EXPECT_TRUE(net::checksums_valid(seen));  // incremental fix is correct
}

TEST(LegacyRouter, TtlExpiryDropsAndSignals) {
  RouterFixture f;
  int time_exceeded = 0;
  f.h1.set_rx_tap([&](const net::Packet& p) {
    const auto parsed = net::parse_packet(p);
    if (parsed && parsed->icmp && parsed->icmp->type == 11) ++time_exceeded;
  });
  f.h1.transmit(f.h1_to_h2(1));
  f.sim.run();
  EXPECT_EQ(f.router.router_stats().ttl_expired, 1u);
  EXPECT_EQ(time_exceeded, 1);
  EXPECT_EQ(f.h2.stats().rx_packets, 0u);
}

TEST(LegacyRouter, NoRouteCounted) {
  RouterFixture f;
  std::vector<std::byte> payload(16, std::byte{0});
  f.h1.transmit(net::build_udp(
      net::EthernetHeader{.dst = f.router.interfaces()[0].mac,
                          .src = f.h1.mac()},
      std::nullopt,
      net::Ipv4Header{.src = f.h1.ip(),
                      .dst = net::Ipv4Address::from_octets(192, 168, 1, 1)},
      net::UdpHeader{.src_port = 1, .dst_port = 2}, payload));
  f.sim.run();
  EXPECT_EQ(f.router.router_stats().no_route, 1u);
  EXPECT_EQ(f.h2.stats().rx_packets, 0u);
}

TEST(LegacyRouter, AnswersEchoToOwnInterface) {
  RouterFixture f;
  int replies = 0;
  f.h1.set_icmp_reply_handler(
      [&](const net::ParsedPacket&, const net::Packet&) { ++replies; });
  std::vector<std::byte> payload(16, std::byte{0});
  f.h1.transmit(net::build_icmp_echo(
      net::EthernetHeader{.dst = f.router.interfaces()[0].mac,
                          .src = f.h1.mac()},
      std::nullopt,
      net::Ipv4Header{.src = f.h1.ip(),
                      .dst = f.router.interfaces()[0].ip},
      net::IcmpEchoHeader{.type = net::kIcmpEchoRequest, .id = 1, .seq = 0},
      payload));
  f.sim.run();
  EXPECT_EQ(f.router.router_stats().for_self, 1u);
  EXPECT_EQ(replies, 1);
}

TEST(LegacyRouter, NonIpDropped) {
  RouterFixture f;
  f.h1.transmit(net::build_ethernet(
      net::EthernetHeader{.dst = f.router.interfaces()[0].mac,
                          .src = f.h1.mac(),
                          .ethertype = 0x8899},
      std::nullopt, {}));
  f.sim.run();
  EXPECT_EQ(f.router.router_stats().non_ip_dropped, 1u);
}

TEST(LegacyRouter, DefaultRouteCatchesOffTableDestinations) {
  // A 0.0.0.0/0 gateway route turns "no route" into a forward: the
  // fallback a RIP-injected default would install.
  RouterFixture f;
  f.router.add_route(net::Ipv4Address{}, 0,
                     NextHop{.port = 1, .next_mac = f.h2.mac()});
  net::Packet seen;
  f.h2.set_rx_tap([&](const net::Packet& p) { seen = p; });
  std::vector<std::byte> payload(16, std::byte{0});
  f.h1.transmit(net::build_udp(
      net::EthernetHeader{.dst = f.router.interfaces()[0].mac,
                          .src = f.h1.mac()},
      std::nullopt,
      net::Ipv4Header{.src = f.h1.ip(),
                      .dst = net::Ipv4Address::from_octets(192, 168, 1, 1)},
      net::UdpHeader{.src_port = 1, .dst_port = 2}, payload));
  f.sim.run();
  EXPECT_EQ(f.router.router_stats().no_route, 0u);
  EXPECT_EQ(f.router.router_stats().forwarded, 1u);
  const auto parsed = net::parse_packet(seen);
  ASSERT_TRUE(parsed && parsed->ipv4);
  EXPECT_EQ(parsed->ipv4->dst, net::Ipv4Address::from_octets(192, 168, 1, 1));
}

TEST(LegacyRouter, HostRouteBeatsCoveringPrefixUntilRemoved) {
  // A /32 for one address inside h2's /24 steers just that flow out the
  // h1-side port; withdrawing it (remove_route, what the RIP speaker does
  // on invalidation) restores the covering /24.
  RouterFixture f;
  f.router.add_route(f.h2.ip(), 32, NextHop{.port = 0, .next_mac = f.h1.mac()});
  int at_h1 = 0;
  f.h1.set_rx_tap([&](const net::Packet&) { ++at_h1; });
  f.h1.transmit(f.h1_to_h2());
  f.sim.run();
  EXPECT_EQ(at_h1, 1);
  EXPECT_EQ(f.h2.stats().rx_packets, 0u);

  EXPECT_TRUE(f.router.remove_route(f.h2.ip(), 32));
  EXPECT_FALSE(f.router.remove_route(f.h2.ip(), 32));  // already gone
  f.h1.transmit(f.h1_to_h2());
  f.sim.run();
  EXPECT_EQ(at_h1, 1);  // no longer hairpinned
  EXPECT_EQ(f.h2.stats().rx_packets, 1u);
}

TEST(LegacyRouter, TtlExpiryIcmpIsWellFormed) {
  // Companion to TtlExpiryDropsAndSignals: the time-exceeded message must
  // be a valid ICMP packet from the receiving interface back to the
  // sender, not just "something" on the wire.
  RouterFixture f;
  net::Packet seen;
  f.h1.set_rx_tap([&](const net::Packet& p) { seen = p; });
  f.h1.transmit(f.h1_to_h2(1));
  f.sim.run();
  const auto parsed = net::parse_packet(seen);
  ASSERT_TRUE(parsed && parsed->ipv4 && parsed->icmp);
  EXPECT_EQ(parsed->icmp->type, 11);
  EXPECT_EQ(parsed->ipv4->src, f.router.interfaces()[0].ip);
  EXPECT_EQ(parsed->ipv4->dst, f.h1.ip());
  EXPECT_EQ(parsed->eth.src, f.router.interfaces()[0].mac);
  EXPECT_EQ(parsed->eth.dst, f.h1.mac());
  EXPECT_TRUE(net::checksums_valid(seen));
}

TEST(LegacyRouter, InterceptorHookWorks) {
  RouterFixture f;
  adversary::DropBehavior drop(adversary::match_all());
  f.router.set_interceptor(&drop);
  f.h1.transmit(f.h1_to_h2());
  f.sim.run();
  EXPECT_EQ(f.h2.stats().rx_packets, 0u);
  EXPECT_EQ(drop.attack_stats().packets_attacked, 1u);
}

// --- Legacy combiner -----------------------------------------------------------

/// h1 — [combiner of k legacy routers] — h2.
struct LegacyCombinerFixture {
  sim::Simulator sim;
  Network net{sim};
  host::Host& h1;
  host::Host& h2;
  core::LegacyCombinerInstance combiner;

  explicit LegacyCombinerFixture(int k = 3)
      : h1(net.add_node<host::Host>(
            "h1", net::MacAddress::from_id(1),
            net::Ipv4Address::from_octets(10, 0, 1, 1))),
        h2(net.add_node<host::Host>(
            "h2", net::MacAddress::from_id(2),
            net::Ipv4Address::from_octets(10, 0, 2, 1))) {
    core::LegacyCombinerOptions options;
    options.k = k;
    combiner = core::build_legacy_combiner(
        net, options,
        {core::LegacyAttachment{
             .neighbor = &h1,
             .link = {},
             .local_macs = {h1.mac()},
             .interface = {.mac = net::MacAddress::from_id(100),
                           .ip = net::Ipv4Address::from_octets(10, 0, 1, 254)}},
         core::LegacyAttachment{
             .neighbor = &h2,
             .link = {},
             .local_macs = {h2.mac()},
             .interface = {.mac = net::MacAddress::from_id(101),
                           .ip = net::Ipv4Address::from_octets(10, 0, 2, 254)}}},
        "legacy");
    combiner.add_route(net::Ipv4Address::from_octets(10, 0, 1, 0), 24, 0,
                       h1.mac());
    combiner.add_route(net::Ipv4Address::from_octets(10, 0, 2, 0), 24, 1,
                       h2.mac());
  }

  host::PingReport ping(int count = 10) {
    host::PingConfig config;
    // L2 next hop is the logical router's interface MAC.
    config.dst_mac = net::MacAddress::from_id(100);
    config.dst_ip = h2.ip();
    config.count = count;
    config.interval = sim::Duration::milliseconds(2);
    config.timeout = sim::Duration::milliseconds(200);
    host::IcmpPinger pinger(h1, config);
    pinger.start();
    while (!pinger.finished() && sim.now().sec() < 3.0) {
      sim.run_for(sim::Duration::milliseconds(10));
    }
    return pinger.report();
  }
};

TEST(LegacyCombiner, ReplicasAreConfigurationClones) {
  LegacyCombinerFixture f;
  ASSERT_EQ(f.combiner.replicas.size(), 3u);
  for (const auto* replica : f.combiner.replicas) {
    EXPECT_EQ(replica->interfaces()[0].mac, net::MacAddress::from_id(100));
    EXPECT_EQ(replica->interfaces()[1].mac, net::MacAddress::from_id(101));
    EXPECT_EQ(replica->fib().size(), 2u);
  }
}

TEST(LegacyCombiner, RoutedPingFlowsThrough) {
  // The replicas rewrite L2 and decrement TTL identically, so the memcmp
  // compare accepts the copies — the clone requirement in action.
  LegacyCombinerFixture f;
  const auto report = f.ping(10);
  EXPECT_EQ(report.received, 10);
  EXPECT_EQ(report.duplicates, 0);
}

TEST(LegacyCombiner, DropperReplicaMasked) {
  LegacyCombinerFixture f;
  adversary::DropBehavior drop(adversary::match_all());
  f.combiner.replicas[0]->set_interceptor(&drop);
  const auto report = f.ping(10);
  EXPECT_EQ(report.received, 10);
}

TEST(LegacyCombiner, CorruptingReplicaMasked) {
  LegacyCombinerFixture f;
  adversary::ModifyBehavior modify(adversary::match_all(),
                                   adversary::ModifyBehavior::corrupt_payload());
  f.combiner.replicas[0]->set_interceptor(&modify);
  const auto report = f.ping(10);
  EXPECT_EQ(report.received, 10);
  EXPECT_EQ(f.h2.stats().rx_bad_checksum, 0u);
}

TEST(LegacyCombiner, TwoDroppersDefeatK3) {
  LegacyCombinerFixture f;
  adversary::DropBehavior drop0(adversary::match_all());
  adversary::DropBehavior drop1(adversary::match_all());
  f.combiner.replicas[0]->set_interceptor(&drop0);
  f.combiner.replicas[1]->set_interceptor(&drop1);
  const auto report = f.ping(5);
  EXPECT_EQ(report.received, 0);
}

TEST(LegacyCombiner, K5ToleratesTwoAttackers) {
  LegacyCombinerFixture f(5);
  adversary::DropBehavior drop(adversary::match_all());
  adversary::ModifyBehavior modify(adversary::match_all(),
                                   adversary::ModifyBehavior::corrupt_payload());
  f.combiner.replicas[0]->set_interceptor(&drop);
  f.combiner.replicas[1]->set_interceptor(&modify);
  const auto report = f.ping(10);
  EXPECT_EQ(report.received, 10);
}

}  // namespace
}  // namespace netco::iproute
