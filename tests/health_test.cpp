// Unit tests for the replica-health subsystem (src/health) and its hooks
// in CompareCore and Hub:
//
//   H1  the verdict stream attributes matched/missed/divergent evidence to
//       the right replica, and stays silent with no sink installed;
//   H2  the quorum adapts to the live set: majority over live replicas,
//       first-copy detection mode at 2, probe copies never vote;
//   H3  a readmitted replica is not blamed for entries fanned out while it
//       was masked (live_since gating);
//   H4  the case-3 unavailability alarm fires exactly at the consecutive-
//       miss threshold, re-arms when the replica reappears, and cannot be
//       triggered by a quarantined replica;
//   H5  HealthMonitor scoring: EWMA with hysteresis, saturating signals,
//       probation readmission, max-quarantines ban, min-live floor;
//   H6  Hub's dynamic port mask and probe stride, with the metrics
//       registry as the single source of truth for its counters.
#include <gtest/gtest.h>

#include <vector>

#include "device/network.h"
#include "health/monitor.h"
#include "net/headers.h"
#include "netco/compare_core.h"
#include "netco/hub.h"

namespace netco {
namespace {

net::Packet numbered_packet(std::uint32_t n, std::size_t payload = 64) {
  std::vector<std::byte> data(payload, std::byte{0});
  return net::build_udp(
      net::EthernetHeader{.dst = net::MacAddress::from_id(2),
                          .src = net::MacAddress::from_id(1)},
      std::nullopt,
      net::Ipv4Header{.src = net::Ipv4Address::from_id(1),
                      .dst = net::Ipv4Address::from_id(2),
                      .identification = static_cast<std::uint16_t>(n)},
      net::UdpHeader{.src_port = static_cast<std::uint16_t>(n >> 16),
                     .dst_port = 5001},
      data);
}

sim::TimePoint at_ms(std::int64_t ms) {
  return sim::TimePoint::origin() + sim::Duration::milliseconds(ms);
}

/// Collects every verdict the core emits.
struct VerdictLog final : core::VerdictSink {
  std::vector<core::ReplicaVerdict> verdicts;
  void on_verdict(const core::ReplicaVerdict& v) override {
    verdicts.push_back(v);
  }
  [[nodiscard]] std::size_t count(core::VerdictKind kind, int replica) const {
    std::size_t n = 0;
    for (const auto& v : verdicts) {
      if (v.kind == kind && v.replica == replica) ++n;
    }
    return n;
  }
};

// --- H1: verdict stream ------------------------------------------------------

TEST(VerdictStream, MatchedAndMissedAttributedOnFinalize) {
  core::CompareCore compare(core::CompareConfig{.k = 3});
  VerdictLog log;
  compare.set_verdict_sink(&log);

  const auto p = numbered_packet(1);
  compare.ingest(0, p, at_ms(0));
  compare.ingest(1, p, at_ms(0));  // released here; replica 2 never shows
  compare.sweep(at_ms(1000));      // retention expires -> finalize

  EXPECT_EQ(log.count(core::VerdictKind::kMatched, 0), 1u);
  EXPECT_EQ(log.count(core::VerdictKind::kMatched, 1), 1u);
  EXPECT_EQ(log.count(core::VerdictKind::kMissed, 2), 1u);
  EXPECT_EQ(log.count(core::VerdictKind::kDivergent, 2), 0u);
}

TEST(VerdictStream, DivergentForDeadSingleton) {
  core::CompareCore compare(core::CompareConfig{.k = 3});
  VerdictLog log;
  compare.set_verdict_sink(&log);

  // Fabricated garbage only replica 1 ever delivers: times out as a
  // singleton -> attributable divergence.
  compare.ingest(1, numbered_packet(77), at_ms(0));
  compare.sweep(at_ms(1000));

  EXPECT_EQ(log.count(core::VerdictKind::kDivergent, 1), 1u);
  // A minority entry is not an agreed packet: no misses for the others.
  EXPECT_EQ(log.count(core::VerdictKind::kMissed, 0), 0u);
  EXPECT_EQ(log.count(core::VerdictKind::kMissed, 2), 0u);
}

TEST(VerdictStream, InactivityEmitsSaturatingVerdict) {
  core::CompareConfig config{.k = 3};
  config.inactivity_threshold = 5;
  core::CompareCore compare(config);
  VerdictLog log;
  compare.set_verdict_sink(&log);

  for (std::uint32_t i = 0; i < 5; ++i) {
    const auto p = numbered_packet(i);
    compare.ingest(0, p, at_ms(i));
    compare.ingest(1, p, at_ms(i));
  }
  compare.sweep(at_ms(1000));
  EXPECT_EQ(log.count(core::VerdictKind::kInactive, 2), 1u);
  EXPECT_EQ(log.count(core::VerdictKind::kMissed, 2), 5u);
}

// --- H2: adaptive quorum -----------------------------------------------------

TEST(AdaptiveQuorum, MajorityShrinksWithLiveSet) {
  core::CompareCore compare(core::CompareConfig{.k = 5});
  EXPECT_EQ(compare.live_quorum(), 3);

  compare.set_replica_live(4, false, at_ms(0));
  compare.set_replica_live(3, false, at_ms(0));
  EXPECT_EQ(compare.live_count(), 3);
  EXPECT_EQ(compare.live_quorum(), 2);
  EXPECT_FALSE(compare.degraded_first_copy());

  // Two live copies now complete the quorum.
  const auto p = numbered_packet(1);
  EXPECT_FALSE(compare.ingest(0, p, at_ms(1)).has_value());
  EXPECT_TRUE(compare.ingest(1, p, at_ms(1)).has_value());
}

TEST(AdaptiveQuorum, ProbeCopiesNeverVoteOrRelease) {
  core::CompareCore compare(core::CompareConfig{.k = 5});
  compare.set_replica_live(4, false, at_ms(0));
  compare.set_replica_live(3, false, at_ms(0));  // live quorum is now 2

  const auto p = numbered_packet(2);
  // Two probation probes plus one live copy: no release — probes are
  // compared and judged but carry no vote.
  EXPECT_FALSE(compare.ingest(4, p, at_ms(1)).has_value());
  EXPECT_FALSE(compare.ingest(3, p, at_ms(1)).has_value());
  EXPECT_FALSE(compare.ingest(0, p, at_ms(1)).has_value());
  // The second live copy completes the quorum.
  EXPECT_TRUE(compare.ingest(1, p, at_ms(1)).has_value());
}

TEST(AdaptiveQuorum, TwoLiveFallsBackToFirstCopyDetection) {
  core::CompareCore compare(core::CompareConfig{.k = 5});
  for (int r : {2, 3, 4}) compare.set_replica_live(r, false, at_ms(0));
  EXPECT_EQ(compare.live_count(), 2);
  EXPECT_TRUE(compare.degraded_first_copy());

  // Detection mode: the first *live* copy releases immediately...
  EXPECT_TRUE(compare.ingest(0, numbered_packet(3), at_ms(1)).has_value());
  // ...but a probe copy must not (a byzantine quarantined replica would
  // otherwise forward fabricated traffic through the degraded mode).
  EXPECT_FALSE(compare.ingest(2, numbered_packet(4), at_ms(1)).has_value());

  // Readmission restores the majority rule.
  compare.set_replica_live(2, false, at_ms(2));  // no-op, already out
  for (int r : {2, 3, 4}) compare.set_replica_live(r, true, at_ms(2));
  EXPECT_EQ(compare.live_quorum(), 3);
  EXPECT_FALSE(compare.degraded_first_copy());
}

// --- H3: no blame across readmission -----------------------------------------

TEST(AdaptiveQuorum, ReadmittedReplicaNotBlamedForOldEntries) {
  core::CompareCore compare(core::CompareConfig{.k = 3});
  VerdictLog log;
  compare.set_verdict_sink(&log);

  compare.set_replica_live(2, false, at_ms(0));
  // Entry fanned out while replica 2 was masked: it never got a copy.
  const auto old_entry = numbered_packet(1);
  compare.ingest(0, old_entry, at_ms(1));
  compare.ingest(1, old_entry, at_ms(1));  // releases (live quorum 2)

  compare.set_replica_live(2, true, at_ms(5));
  compare.sweep(at_ms(1000));  // finalizes the pre-readmission entry
  EXPECT_EQ(log.count(core::VerdictKind::kMissed, 2), 0u);

  // Entries born after the readmission do blame it again.
  const auto new_entry = numbered_packet(2);
  compare.ingest(0, new_entry, at_ms(1001));
  compare.ingest(1, new_entry, at_ms(1001));
  compare.sweep(at_ms(2000));
  EXPECT_EQ(log.count(core::VerdictKind::kMissed, 2), 1u);
}

// --- H4: case-3 alarm boundary (satellite) -----------------------------------

class InactivityBoundary : public ::testing::Test {
 protected:
  InactivityBoundary() {
    core::CompareConfig config{.k = 3};
    config.inactivity_threshold = 5;
    compare_.emplace(config);
    compare_->set_verdict_sink(&log_);
  }

  /// Releases one packet via replicas {0,1} (replica 2 absent unless
  /// `with_two`), then finalizes it by sweeping past the retention.
  void agreed_packet(bool with_two) {
    const auto p = numbered_packet(next_++);
    const auto t = at_ms(clock_ms_);
    compare_->ingest(0, p, t);
    compare_->ingest(1, p, t);
    if (with_two) compare_->ingest(2, p, t);
    clock_ms_ += 100;  // > hold_timeout: the sweep finalizes this entry
    compare_->sweep(at_ms(clock_ms_));
  }

  [[nodiscard]] std::size_t alarms() {
    const auto advice = compare_->take_advice();
    alarms_ += advice.inactive_replicas.size();
    return alarms_;
  }

  std::optional<core::CompareCore> compare_;
  VerdictLog log_;
  std::uint32_t next_ = 1;
  std::int64_t clock_ms_ = 0;
  std::size_t alarms_ = 0;
};

TEST_F(InactivityBoundary, FiresExactlyAtThreshold) {
  for (int i = 0; i < 4; ++i) agreed_packet(false);
  EXPECT_EQ(alarms(), 0u);  // threshold - 1: not yet
  agreed_packet(false);
  EXPECT_EQ(alarms(), 1u);  // exactly at threshold
  agreed_packet(false);
  EXPECT_EQ(alarms(), 1u);  // and only once per dead streak
  EXPECT_EQ(log_.count(core::VerdictKind::kInactive, 2), 1u);
}

TEST_F(InactivityBoundary, ReappearanceClearsAndRearms) {
  for (int i = 0; i < 5; ++i) agreed_packet(false);
  EXPECT_EQ(alarms(), 1u);

  agreed_packet(true);  // replica 2 reappears: streak and latch reset
  for (int i = 0; i < 4; ++i) agreed_packet(false);
  EXPECT_EQ(alarms(), 1u);  // fresh streak below threshold
  agreed_packet(false);
  EXPECT_EQ(alarms(), 2u);  // second full streak -> alarm re-fires
}

TEST_F(InactivityBoundary, QuarantinedReplicaCannotTrigger) {
  for (int i = 0; i < 3; ++i) agreed_packet(false);  // part of a streak
  compare_->set_replica_live(2, false, at_ms(clock_ms_));
  // Masked out: absences are expected (sampled trickle), never misses.
  for (int i = 0; i < 20; ++i) agreed_packet(false);
  EXPECT_EQ(alarms(), 0u);
  EXPECT_EQ(log_.count(core::VerdictKind::kMissed, 2), 3u);

  // Readmitted with a clean slate: the pre-quarantine streak is gone.
  compare_->set_replica_live(2, true, at_ms(clock_ms_));
  for (int i = 0; i < 4; ++i) agreed_packet(false);
  EXPECT_EQ(alarms(), 0u);
  agreed_packet(false);
  EXPECT_EQ(alarms(), 1u);
}

// --- H5: HealthMonitor scoring -----------------------------------------------

health::HealthConfig monitor_config() {
  health::HealthConfig config;
  config.enabled = true;
  config.min_verdicts = 4;
  config.readmit_probe_matches = 3;
  return config;
}

core::ReplicaVerdict verdict_of(core::VerdictKind kind, int replica,
                                bool live = true) {
  return core::ReplicaVerdict{
      .kind = kind, .replica = replica, .live = live, .at = at_ms(1)};
}

TEST(HealthMonitor, SustainedDivergenceQuarantines) {
  health::HealthMonitor monitor(monitor_config(), 5);
  for (int i = 0; i < 20; ++i) {
    monitor.on_verdict(verdict_of(core::VerdictKind::kDivergent, 1));
    if (monitor.replica(1).state == health::ReplicaState::kQuarantined) break;
  }
  const auto actions = monitor.take_actions();
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].kind, health::HealthAction::Kind::kQuarantine);
  EXPECT_EQ(actions[0].replica, 1);
  EXPECT_GE(actions[0].score, monitor.config().quarantine_threshold);
}

TEST(HealthMonitor, ColdStartGuardHoldsOffEarlyVerdicts) {
  health::HealthMonitor monitor(monitor_config(), 5);
  // Fewer than min_verdicts, even all-divergent: no action yet.
  for (int i = 0; i < 3; ++i) {
    monitor.on_verdict(verdict_of(core::VerdictKind::kDivergent, 1));
  }
  EXPECT_TRUE(monitor.take_actions().empty());
  EXPECT_EQ(monitor.replica(1).state, health::ReplicaState::kLive);
}

TEST(HealthMonitor, SaturatingSignalQuarantinesImmediately) {
  health::HealthMonitor monitor(monitor_config(), 5);
  // The compare's own windowed monitor produced this: no cold-start wait.
  monitor.on_verdict(verdict_of(core::VerdictKind::kFloodFlagged, 2));
  const auto actions = monitor.take_actions();
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].kind, health::HealthAction::Kind::kQuarantine);
  EXPECT_DOUBLE_EQ(monitor.replica(2).score, 1.0);
}

TEST(HealthMonitor, ProbationReadmitsOnMatchesAndLowScore) {
  health::HealthMonitor monitor(monitor_config(), 5);
  monitor.on_verdict(verdict_of(core::VerdictKind::kInactive, 3));
  ASSERT_EQ(monitor.replica(3).state, health::ReplicaState::kQuarantined);
  (void)monitor.take_actions();

  // Matched probes decay the score; a divergent probe restarts the count.
  monitor.on_verdict(verdict_of(core::VerdictKind::kMatched, 3, false));
  monitor.on_verdict(verdict_of(core::VerdictKind::kDivergent, 3, false));
  EXPECT_EQ(monitor.replica(3).probe_matches, 0u);

  int probes = 0;
  while (monitor.replica(3).state == health::ReplicaState::kQuarantined &&
         probes < 100) {
    monitor.on_verdict(verdict_of(core::VerdictKind::kMatched, 3, false));
    ++probes;
  }
  const auto actions = monitor.take_actions();
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].kind, health::HealthAction::Kind::kReadmit);
  EXPECT_LE(actions[0].score, monitor.config().readmit_threshold);
  EXPECT_GE(probes, 3);  // at least readmit_probe_matches
}

TEST(HealthMonitor, BanAfterMaxQuarantines) {
  health::HealthConfig config = monitor_config();
  config.max_quarantines = 2;
  health::HealthMonitor monitor(config, 5);

  const auto quarantine = [&] {
    monitor.on_verdict(verdict_of(core::VerdictKind::kFloodFlagged, 0));
  };
  const auto readmit = [&] {
    while (monitor.replica(0).state == health::ReplicaState::kQuarantined) {
      monitor.on_verdict(verdict_of(core::VerdictKind::kMatched, 0, false));
    }
  };
  quarantine();
  readmit();
  quarantine();
  readmit();
  (void)monitor.take_actions();
  quarantine();  // third strike: ban, not quarantine
  const auto actions = monitor.take_actions();
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].kind, health::HealthAction::Kind::kBan);
  EXPECT_EQ(monitor.replica(0).state, health::ReplicaState::kBanned);

  // Banned replicas are out of scope for further verdicts.
  monitor.on_verdict(verdict_of(core::VerdictKind::kMatched, 0, false));
  EXPECT_TRUE(monitor.take_actions().empty());
  EXPECT_EQ(monitor.replica(0).state, health::ReplicaState::kBanned);
}

TEST(HealthMonitor, MinLiveFloorBlocksLastQuarantines) {
  health::HealthConfig config = monitor_config();
  config.min_live = 2;
  health::HealthMonitor monitor(config, 3);

  monitor.on_verdict(verdict_of(core::VerdictKind::kFloodFlagged, 0));
  ASSERT_EQ(monitor.replica(0).state, health::ReplicaState::kQuarantined);
  // A second bad replica would leave only min_live: the floor holds it
  // live no matter how bad the score gets.
  for (int i = 0; i < 10; ++i) {
    monitor.on_verdict(verdict_of(core::VerdictKind::kFloodFlagged, 1));
  }
  EXPECT_EQ(monitor.replica(1).state, health::ReplicaState::kLive);
  EXPECT_EQ(monitor.live_replicas(), 2);
}

// --- H6: Hub mask + registry-backed counters ---------------------------------

struct Probe : device::Node {
  using Node::Node;
  void handle_packet(device::PortIndex, net::Packet p) override {
    received.push_back(std::move(p));
  }
  std::vector<net::Packet> received;
};

TEST(HubMask, MaskedPortExcludedUntilProbeStride) {
  sim::Simulator sim;
  device::Network net(sim);
  auto& hub = net.add_node<core::Hub>("hub-mask");
  auto& up = net.add_node<Probe>("up");
  auto& r1 = net.add_node<Probe>("r1");
  auto& r2 = net.add_node<Probe>("r2");
  net.connect(hub, up);  // port 0 = upstream
  net.connect(hub, r1);  // port 1
  net.connect(hub, r2);  // port 2

  hub.set_port_masked(2, true);
  EXPECT_TRUE(hub.port_masked(2));
  hub.set_probe_stride(3);  // every 3rd split trickles to masked ports

  for (int i = 0; i < 6; ++i) up.send(0, net::Packet::zeroed(100));
  sim.run();

  EXPECT_EQ(r1.received.size(), 6u);  // unmasked: every copy
  EXPECT_EQ(r2.received.size(), 2u);  // splits 3 and 6 only
  EXPECT_EQ(hub.split_count(), 6u);

  hub.set_port_masked(2, false);
  up.send(0, net::Packet::zeroed(100));
  sim.run();
  EXPECT_EQ(r2.received.size(), 3u);
  EXPECT_EQ(hub.split_count(), 7u);
}

TEST(HubMask, ZeroStrideMeansNoTrickle) {
  sim::Simulator sim;
  device::Network net(sim);
  auto& hub = net.add_node<core::Hub>("hub-nostride");
  auto& up = net.add_node<Probe>("up");
  auto& r1 = net.add_node<Probe>("r1");
  net.connect(hub, up);
  net.connect(hub, r1);

  hub.set_port_masked(1, true);
  for (int i = 0; i < 5; ++i) up.send(0, net::Packet::zeroed(50));
  sim.run();
  EXPECT_EQ(r1.received.size(), 0u);
  // The registry counters are the accessors' source of truth: splits are
  // counted even when every fan-out port is masked.
  EXPECT_EQ(hub.split_count(), 5u);

  // Masking the upstream port is meaningless and ignored.
  hub.set_port_masked(0, true);
  EXPECT_FALSE(hub.port_masked(0));
}

}  // namespace
}  // namespace netco
