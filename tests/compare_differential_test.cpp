// Differential-testing layer for the sampled-verification fast path
// (§XII). Two anchors lock the mode down:
//
//  * sampling OFF is byte-for-byte the pre-§XII compare: short soaks must
//    reproduce golden stream hashes captured before the fast path
//    existed. A drift here means the refactor changed full-verification
//    behaviour, which it must not.
//
//  * sampling ON, benign traffic: the sampled run must deliver exactly
//    the same multiset of packets onto the same wires as the full-verify
//    run (order-independent egress_set_hash equality), with zero
//    duplicate egress — the fast path may change *when* a packet
//    releases, never *what* is released.
#include <gtest/gtest.h>

#include "scenario/soak.h"

namespace netco::scenario {
namespace {

// Golden stream hashes of the tier-1 smoke configurations, captured
// before the sampled fast path landed. These pin "sampling off ⇒ no
// behaviour change" at the strongest granularity we have: the FNV-1a of
// every canonical-JSON trace record in event order.
constexpr std::uint64_t kGoldenK3Majority = 0x185eeac979187253ULL;
constexpr std::uint64_t kGoldenK2FirstCopy = 0x792f19c6d8bdabc4ULL;
constexpr std::uint64_t kGoldenK3Health = 0x3e1e67be7af87240ULL;
constexpr std::uint64_t kGoldenK5Benign = 0xa5aa2967e409d7a7ULL;

SoakOptions faulted_options(int k, core::ReleasePolicy policy,
                            std::uint64_t seed) {
  SoakOptions options;
  options.k = k;
  options.policy = policy;
  options.seed = seed;
  options.packets = 2500;
  return options;
}

/// Benign k=5 run: health loop on, no fault plan. The one configuration
/// where full and sampled verification must be observationally identical
/// on the wire.
SoakOptions benign_options(bool sampled) {
  SoakOptions options;
  options.k = 5;
  options.policy = core::ReleasePolicy::kMajority;
  options.seed = 500;
  options.packets = 2500;
  options.health.enabled = true;
  options.inject_default_faults = false;
  options.sampling.enabled = sampled;
  return options;
}

TEST(CompareDifferential, FullVerifyReproducesGoldenStreamHashes) {
  const SoakResult k3 = run_soak(
      faulted_options(3, core::ReleasePolicy::kMajority, 77));
  EXPECT_TRUE(k3.ok());
  EXPECT_EQ(k3.stream_hash, kGoldenK3Majority)
      << "k3-majority full-verify trace stream drifted from its golden";

  const SoakResult k2 = run_soak(
      faulted_options(2, core::ReleasePolicy::kFirstCopy, 101));
  EXPECT_TRUE(k2.ok());
  EXPECT_EQ(k2.stream_hash, kGoldenK2FirstCopy)
      << "k2-firstcopy full-verify trace stream drifted from its golden";

  SoakOptions health = faulted_options(3, core::ReleasePolicy::kMajority, 77);
  health.health.enabled = true;
  const SoakResult k3h = run_soak(health);
  EXPECT_TRUE(k3h.ok());
  EXPECT_EQ(k3h.stream_hash, kGoldenK3Health)
      << "k3-health full-verify trace stream drifted from its golden";

  const SoakResult k5 = run_soak(benign_options(false));
  EXPECT_TRUE(k5.ok());
  EXPECT_EQ(k5.stream_hash, kGoldenK5Benign)
      << "benign k5 full-verify trace stream drifted from its golden";
}

TEST(CompareDifferential, BenignSampledEgressSetMatchesFullVerify) {
  const SoakResult full = run_soak(benign_options(false));
  const SoakResult sampled = run_soak(benign_options(true));

  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(sampled.ok()) << "violations="
                            << sampled.invariants.violations;

  // The differential anchor: identical egress packet sets on identical
  // wires, regardless of release timing.
  EXPECT_EQ(sampled.egress_set_hash, full.egress_set_hash);
  EXPECT_EQ(sampled.compare_released, full.compare_released);
  EXPECT_EQ(sampled.delivered_unique, full.delivered_unique);

  // The fast path actually engaged (this is not a vacuous comparison)...
  EXPECT_GT(sampled.fastpath_released, 0u);
  EXPECT_GT(sampled.sampled_escalated, 0u);
  // ...and the full-verify run never touched it.
  EXPECT_EQ(full.fastpath_released, 0u);
  EXPECT_EQ(full.sampled_escalated, 0u);

  // At-most-once egress: the fast path and the escalated full compare
  // never both release the same packet.
  EXPECT_EQ(sampled.duplicate_egress, 0u);
}

TEST(CompareDifferential, SampledRunIsBitReproducible) {
  const SoakResult a = run_soak(benign_options(true));
  const SoakResult b = run_soak(benign_options(true));
  EXPECT_EQ(a.stream_hash, b.stream_hash);
  EXPECT_EQ(a.egress_set_hash, b.egress_set_hash);
  EXPECT_EQ(a.trace_records, b.trace_records);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.fastpath_released, b.fastpath_released);
  EXPECT_EQ(a.sampled_escalated, b.sampled_escalated);
}

TEST(CompareDifferential, ProtocolOnlyTraceKeepsInvariantsAndEgress) {
  // The bench's perf pair feeds the checker protocol records only; the
  // thinned stream must lose narration, never protocol coverage — same
  // egress set, same release count, invariants and the duplicate check
  // still armed.
  SoakOptions lean = benign_options(true);
  lean.protocol_trace_only = true;
  const SoakResult thin = run_soak(lean);
  const SoakResult full = run_soak(benign_options(true));

  ASSERT_TRUE(thin.ok()) << "violations=" << thin.invariants.violations;
  EXPECT_LT(thin.trace_records, full.trace_records);
  EXPECT_GT(thin.invariants.checks, 0u);
  EXPECT_EQ(thin.egress_set_hash, full.egress_set_hash);
  EXPECT_EQ(thin.compare_released, full.compare_released);
  EXPECT_EQ(thin.duplicate_egress, 0u);
}

TEST(CompareDifferential, PeriodOneEscalatesEverything) {
  // period=1 is the degenerate sampled mode: every packet is elected for
  // the full compare, so nothing ever releases on the fast path and the
  // wire still carries exactly the full-verify egress set.
  SoakOptions options = benign_options(true);
  options.sampling.period = 1;
  const SoakResult degenerate = run_soak(options);
  const SoakResult full = run_soak(benign_options(false));

  ASSERT_TRUE(degenerate.ok());
  EXPECT_EQ(degenerate.fastpath_released, 0u);
  EXPECT_EQ(degenerate.sampled_escalated, degenerate.compare_released);
  EXPECT_EQ(degenerate.egress_set_hash, full.egress_set_hash);
  EXPECT_EQ(degenerate.compare_released, full.compare_released);
}

}  // namespace
}  // namespace netco::scenario
