// Tests for the fault-injection subsystem: plan generation determinism,
// injector execution against a real combiner topology, and — crucially —
// that the invariant checkers actually trip on violating inputs (a
// checker that can't fail is not a checker).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "faultinject/fault_plan.h"
#include "faultinject/injector.h"
#include "faultinject/invariants.h"
#include "net/headers.h"
#include "netco/compare_core.h"
#include "scenario/scenarios.h"

namespace netco::faultinject {
namespace {

obs::TraceRecord record(obs::TraceEvent event, std::uint64_t pkt,
                        std::int32_t replica,
                        const std::string& component = "compare/e") {
  obs::TraceRecord r;
  r.at_ns = 1000;
  r.event = event;
  r.packet_id = pkt;
  r.replica = replica;
  r.bytes = 64;
  r.component = component;
  return r;
}

// --- FaultPlan ------------------------------------------------------------

TEST(FaultPlan, SameSeedSamePlan) {
  FaultPlanParams params;
  params.k = 3;
  const FaultPlan a = FaultPlan::random(42, params);
  const FaultPlan b = FaultPlan::random(42, params);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.to_json(), b.to_json());

  const FaultPlan c = FaultPlan::random(43, params);
  EXPECT_NE(a.to_json(), c.to_json());
}

TEST(FaultPlan, EventsSortedAndPaired) {
  FaultPlanParams params;
  params.k = 5;
  params.replica_crashes = 2;
  params.behavior_swaps = 2;
  const FaultPlan plan = FaultPlan::random(7, params);
  ASSERT_FALSE(plan.empty());

  std::int64_t prev = 0;
  int crashes = 0, restarts = 0;
  for (const FaultEvent& e : plan.events) {
    EXPECT_GE(e.at_ns, prev);
    prev = e.at_ns;
    EXPECT_LT(e.at_ns, params.horizon.ns());
    EXPECT_GE(e.at_ns, params.start.ns());
    if (e.kind == FaultKind::kReplicaCrash) ++crashes;
    if (e.kind == FaultKind::kReplicaRestart) ++restarts;
  }
  // Every crash recovers inside the horizon.
  EXPECT_EQ(crashes, restarts);
  EXPECT_EQ(crashes, params.replica_crashes);
}

TEST(FaultPlan, EmptyHorizonYieldsEmptyPlan) {
  FaultPlanParams params;
  params.horizon = params.start;  // no room for any event
  EXPECT_TRUE(FaultPlan::random(1, params).empty());
}

TEST(FaultPlan, JsonRoundTripsEveryKindAndBehavior) {
  // One event of every kind, with every field in play, survives
  // to_json → from_json → to_json byte-identically. This is the bench
  // artifact's contract: a serialized plan can be reloaded and replayed.
  FaultPlan plan;
  std::int64_t t = 1'000'000;
  const auto at = [&t] { return t += 1'000'000; };
  plan.events.push_back({at(), FaultKind::kLinkDown, 0, 1, 0, 0, 0,
                         SwapBehavior::kHonest, 0});
  plan.events.push_back({at(), FaultKind::kLinkUp, 0, 1, 0, 0, 0,
                         SwapBehavior::kHonest, 0});
  plan.events.push_back({at(), FaultKind::kLinkLoss, 1, 2, 0.25, 0, 0,
                         SwapBehavior::kHonest, 0});
  plan.events.push_back({at(), FaultKind::kLinkLatency, 1, 0, 0, 150'000, 0,
                         SwapBehavior::kHonest, 0});
  plan.events.push_back({at(), FaultKind::kReplicaCrash, -1, 2, 0, 0, 0,
                         SwapBehavior::kHonest, 0});
  plan.events.push_back({at(), FaultKind::kReplicaRestart, -1, 2, 0, 0, 0,
                         SwapBehavior::kHonest, 0});
  plan.events.push_back({at(), FaultKind::kBehaviorSwap, 0, 1, 0, 0, 0,
                         SwapBehavior::kDrop, 0});
  plan.events.push_back({at(), FaultKind::kBehaviorSwap, 0, 1, 0, 0, 0,
                         SwapBehavior::kCorrupt, 0});
  plan.events.push_back({at(), FaultKind::kBehaviorSwap, 0, 1, 0, 0, 0,
                         SwapBehavior::kReroute, 0});
  plan.events.push_back({at(), FaultKind::kCacheSqueeze, -1, 0, 0, 0, 48,
                         SwapBehavior::kHonest, 0});
  plan.events.push_back({at(), FaultKind::kCacheRestore, -1, 0, 0, 0, 0,
                         SwapBehavior::kHonest, 0});
  plan.events.push_back({at(), FaultKind::kCompareCrash, -1, 0, 0, 0, 0,
                         SwapBehavior::kHonest, 40'000'000});
  plan.events.push_back({at(), FaultKind::kCompareHang, -1, 0, 0, 0, 0,
                         SwapBehavior::kHonest, 10'000'000});
  plan.events.push_back({at(), FaultKind::kHubCrash, 1, 0, 0, 0, 0,
                         SwapBehavior::kHonest, 5'000'000});
  plan.events.push_back({at(), FaultKind::kHeartbeatLoss, -1, 0, 0, 0, 0,
                         SwapBehavior::kHonest, 25'000'000});
  plan.events.push_back({at(), FaultKind::kRoutePoison, -1, 0, 0, 0, 0,
                         SwapBehavior::kHonest, 0});
  plan.events.push_back({at(), FaultKind::kMetricInflate, -1, 1, 0, 0, 0,
                         SwapBehavior::kHonest, 0});
  plan.events.push_back({at(), FaultKind::kBlackholeAd, -1, 2, 0, 0, 0,
                         SwapBehavior::kHonest, 0});
  plan.events.push_back({at(), FaultKind::kFabricLinkCut, -1, 0, 0, 0, 0,
                         SwapBehavior::kHonest, 0, 10, 2});
  plan.events.push_back({at(), FaultKind::kFabricLinkRestore, -1, 0, 0, 0, 0,
                         SwapBehavior::kHonest, 0, 10, 2});
  plan.events.push_back({at(), FaultKind::kSwitchKill, -1, 0, 0, 0, 0,
                         SwapBehavior::kHonest, 0, 16, -1});
  plan.events.push_back({at(), FaultKind::kSwitchRestart, -1, 0, 0, 0, 0,
                         SwapBehavior::kHonest, 0, 16, -1});
  plan.normalize();

  const std::string json = plan.to_json();
  const auto parsed = FaultPlan::from_json(json);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& a = plan.events[i];
    const FaultEvent& b = parsed->events[i];
    EXPECT_EQ(a.at_ns, b.at_ns) << "event " << i;
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.edge, b.edge) << "event " << i;
    EXPECT_EQ(a.replica, b.replica) << "event " << i;
    EXPECT_DOUBLE_EQ(a.loss_rate, b.loss_rate) << "event " << i;
    EXPECT_EQ(a.extra_latency_ns, b.extra_latency_ns) << "event " << i;
    EXPECT_EQ(a.cache_capacity, b.cache_capacity) << "event " << i;
    EXPECT_EQ(a.behavior, b.behavior) << "event " << i;
    EXPECT_EQ(a.duration_ns, b.duration_ns) << "event " << i;
    EXPECT_EQ(a.node, b.node) << "event " << i;
    EXPECT_EQ(a.peer, b.peer) << "event " << i;
  }
  EXPECT_EQ(parsed->to_json(), json);
}

TEST(FaultPlan, LegacyLinesWithoutNodePeerStillParse) {
  // Plans serialized before the fabric vocabulary existed carry no
  // node/peer members; they must load with the -1 defaults so archived
  // bench artifacts stay replayable.
  const auto parsed = FaultPlan::from_json(
      "{\"t\":1,\"kind\":\"link.down\",\"edge\":0,\"replica\":1,"
      "\"loss\":0,\"latency_ns\":0,\"capacity\":0,\"behavior\":\"honest\","
      "\"duration_ns\":0}");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->events.size(), 1u);
  EXPECT_EQ(parsed->events[0].node, -1);
  EXPECT_EQ(parsed->events[0].peer, -1);
}

TEST(FaultPlan, FromJsonRejectsUnknownFabricKind) {
  // The rejection contract extends to the fabric vocabulary: a typo'd
  // kind fails the whole parse instead of degrading to an empty plan.
  EXPECT_FALSE(
      FaultPlan::from_json(
          "{\"t\":1,\"kind\":\"switch.evaporate\",\"edge\":-1,\"replica\":0,"
          "\"loss\":0,\"latency_ns\":0,\"capacity\":0,\"behavior\":\"honest\","
          "\"duration_ns\":0,\"node\":3,\"peer\":-1}")
          .has_value());
  // The correctly-spelled fabric kinds parse with their addressing.
  for (const char* kind :
       {"link.cut", "link.restore", "switch.kill", "switch.restart"}) {
    const std::string line =
        std::string("{\"t\":1,\"kind\":\"") + kind +
        "\",\"edge\":-1,\"replica\":0,\"loss\":0,\"latency_ns\":0,"
        "\"capacity\":0,\"behavior\":\"honest\",\"duration_ns\":0,"
        "\"node\":7,\"peer\":12}";
    const auto parsed = FaultPlan::from_json(line);
    ASSERT_TRUE(parsed.has_value()) << kind;
    ASSERT_EQ(parsed->events.size(), 1u) << kind;
    EXPECT_EQ(parsed->events[0].node, 7) << kind;
    EXPECT_EQ(parsed->events[0].peer, 12) << kind;
  }
}

TEST(FaultPlan, JsonRoundTripsRandomPlanWithTrustedFaults) {
  FaultPlanParams params;
  params.k = 5;
  params.compare_crashes = 1;
  params.compare_hangs = 1;
  params.hub_crashes = 2;
  params.heartbeat_losses = 1;
  const FaultPlan plan = FaultPlan::random(99, params);
  ASSERT_FALSE(plan.empty());

  int trusted = 0;
  for (const FaultEvent& e : plan.events) {
    if (e.kind == FaultKind::kCompareCrash ||
        e.kind == FaultKind::kCompareHang ||
        e.kind == FaultKind::kHubCrash ||
        e.kind == FaultKind::kHeartbeatLoss) {
      ++trusted;
      EXPECT_GT(e.duration_ns, 0) << "trusted faults always recover";
      EXPECT_LT(e.at_ns + e.duration_ns, params.horizon.ns());
    }
  }
  EXPECT_EQ(trusted, 5);

  const auto parsed = FaultPlan::from_json(plan.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_json(), plan.to_json());
}

TEST(FaultPlan, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(FaultPlan::from_json("{\"t\":banana}").has_value());
  EXPECT_FALSE(
      FaultPlan::from_json(
          "{\"t\":1,\"kind\":\"no.such.kind\",\"edge\":0,\"replica\":0,"
          "\"loss\":0,\"latency_ns\":0,\"capacity\":0,\"behavior\":\"honest\","
          "\"duration_ns\":0}")
          .has_value());
}

TEST(FaultPlan, FromJsonRejectsUnknownRoutingKind) {
  // A typo'd routing kind ("routing.posion") must fail the whole parse,
  // not degrade into an empty plan — a silently-empty plan would make an
  // attack run look benign.
  EXPECT_FALSE(
      FaultPlan::from_json(
          "{\"t\":1,\"kind\":\"routing.posion\",\"edge\":-1,\"replica\":0,"
          "\"loss\":0,\"latency_ns\":0,\"capacity\":0,\"behavior\":\"honest\","
          "\"duration_ns\":0}")
          .has_value());
  // The correctly-spelled kinds parse.
  for (const char* kind :
       {"routing.poison", "routing.inflate", "routing.blackhole"}) {
    const std::string line =
        std::string("{\"t\":1,\"kind\":\"") + kind +
        "\",\"edge\":-1,\"replica\":0,\"loss\":0,\"latency_ns\":0,"
        "\"capacity\":0,\"behavior\":\"honest\",\"duration_ns\":0}";
    const auto parsed = FaultPlan::from_json(line);
    ASSERT_TRUE(parsed.has_value()) << kind;
    ASSERT_EQ(parsed->events.size(), 1u) << kind;
  }
}

// --- FaultInjector --------------------------------------------------------

TEST(FaultInjector, AppliesLinkAndCacheEventsOnRealTopology) {
  topo::Figure3Topology topo(
      scenario::make_options(scenario::ScenarioKind::kCentral3, 1));
  auto& combiner = topo.combiner();

  FaultPlan plan;
  plan.events.push_back({sim::Duration::milliseconds(1).ns(),
                         FaultKind::kLinkDown, 0, 1, 0, 0, 0,
                         SwapBehavior::kHonest});
  plan.events.push_back({sim::Duration::milliseconds(2).ns(),
                         FaultKind::kCacheSqueeze, -1, 0, 0, 0, 32,
                         SwapBehavior::kHonest});
  plan.events.push_back({sim::Duration::milliseconds(3).ns(),
                         FaultKind::kLinkUp, 0, 1, 0, 0, 0,
                         SwapBehavior::kHonest});
  plan.events.push_back({sim::Duration::milliseconds(4).ns(),
                         FaultKind::kCacheRestore, -1, 0, 0, 0, 0,
                         SwapBehavior::kHonest});
  plan.normalize();

  FaultInjector injector(topo, plan);
  injector.arm();

  const std::size_t original =
      combiner.compare->core_for(combiner.edges[0]->name())
          ->config()
          .cache_capacity;

  topo.simulator().run_for(sim::Duration::microseconds(1500));
  EXPECT_TRUE(combiner.edge_replica_link[0][1]->forward().is_down());
  EXPECT_EQ(injector.applied(), 1u);

  topo.simulator().run_for(sim::Duration::milliseconds(1));
  EXPECT_EQ(combiner.compare->core_for(combiner.edges[0]->name())
                ->config()
                .cache_capacity,
            32u);

  topo.simulator().run_for(sim::Duration::milliseconds(2));
  EXPECT_FALSE(combiner.edge_replica_link[0][1]->forward().is_down());
  EXPECT_EQ(combiner.compare->core_for(combiner.edges[0]->name())
                ->config()
                .cache_capacity,
            original);
  EXPECT_EQ(injector.applied(), plan.events.size());
}

// --- check_audit ----------------------------------------------------------

TEST(CheckAudit, PassesOnConsistentSnapshot) {
  core::CompareAudit audit;
  audit.cache_entries = 3;
  audit.age_entries = 3;
  audit.cache_capacity = 8;
  audit.quota_counts = {1, 2};
  audit.live_singletons = {1, 2};
  InvariantReport report;
  check_audit(audit, "edge", report);
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.checks, 0u);
}

TEST(CheckAudit, TripsOnQuotaDrift) {
  core::CompareAudit audit;
  audit.cache_capacity = 8;
  audit.quota_counts = {5, 0};   // counter says 5...
  audit.live_singletons = {0, 0};  // ...but nothing is live: a leak
  InvariantReport report;
  check_audit(audit, "edge", report);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.details.empty());
  EXPECT_NE(report.details.front().find("quota"), std::string::npos);
}

TEST(CheckAudit, TripsOnAgeCacheDisagreement) {
  core::CompareAudit audit;
  audit.cache_capacity = 8;
  audit.age_cache_consistent = false;
  InvariantReport report;
  check_audit(audit, "edge", report);
  EXPECT_FALSE(report.ok());
}

TEST(CheckAudit, TripsOnCapacityOverflow) {
  core::CompareAudit audit;
  audit.cache_entries = 9;
  audit.age_entries = 9;
  audit.cache_capacity = 8;
  InvariantReport report;
  check_audit(audit, "edge", report);
  EXPECT_FALSE(report.ok());
}

TEST(CheckAudit, TripsOnUnorderedAgeList) {
  core::CompareAudit audit;
  audit.cache_capacity = 8;
  audit.age_ordered = false;
  InvariantReport report;
  check_audit(audit, "edge", report);
  EXPECT_FALSE(report.ok());
}

// --- QuorumTraceChecker ---------------------------------------------------

TEST(QuorumTraceChecker, AcceptsQuorumBackedRelease) {
  QuorumTraceChecker checker({.quorum = 2, .first_copy = false});
  checker.append(record(obs::TraceEvent::kCompareIngest, 1, 0));
  checker.append(record(obs::TraceEvent::kCompareIngest, 1, 1));
  checker.append(record(obs::TraceEvent::kCompareRelease, 1, 1));
  EXPECT_TRUE(checker.report().ok());
  EXPECT_EQ(checker.releases(), 1u);
}

TEST(QuorumTraceChecker, TripsOnReleaseWithoutQuorum) {
  QuorumTraceChecker checker({.quorum = 2, .first_copy = false});
  checker.append(record(obs::TraceEvent::kCompareIngest, 1, 0));
  checker.append(record(obs::TraceEvent::kCompareRelease, 1, 0));
  EXPECT_FALSE(checker.report().ok());
}

TEST(QuorumTraceChecker, SameReplicaDuplicateVoteDoesNotCount) {
  QuorumTraceChecker checker({.quorum = 2, .first_copy = false});
  // Two ingests from the same replica set the same bit: still one vote.
  checker.append(record(obs::TraceEvent::kCompareIngest, 1, 0));
  checker.append(record(obs::TraceEvent::kCompareIngest, 1, 0));
  checker.append(record(obs::TraceEvent::kCompareRelease, 1, 0));
  EXPECT_FALSE(checker.report().ok());
}

TEST(QuorumTraceChecker, FirstCopyModeAcceptsSingleVote) {
  QuorumTraceChecker checker({.quorum = 2, .first_copy = true});
  checker.append(record(obs::TraceEvent::kCompareIngest, 1, 0));
  checker.append(record(obs::TraceEvent::kCompareRelease, 1, 0));
  EXPECT_TRUE(checker.report().ok());
}

TEST(QuorumTraceChecker, EvictionClearsVotes) {
  QuorumTraceChecker checker({.quorum = 2, .first_copy = false});
  checker.append(record(obs::TraceEvent::kCompareIngest, 1, 0));
  checker.append(record(obs::TraceEvent::kCompareEvictTimeout, 1, 0));
  // The id reappears (retransmission): old votes must not carry over.
  checker.append(record(obs::TraceEvent::kCompareIngest, 1, 1));
  checker.append(record(obs::TraceEvent::kCompareRelease, 1, 1));
  EXPECT_FALSE(checker.report().ok());  // one fresh vote < quorum
}

TEST(QuorumTraceChecker, ComponentsAreIndependent) {
  QuorumTraceChecker checker({.quorum = 2, .first_copy = false});
  // Two votes at e0 must not legitimise a release at e1.
  checker.append(record(obs::TraceEvent::kCompareIngest, 1, 0, "e0"));
  checker.append(record(obs::TraceEvent::kCompareIngest, 1, 1, "e0"));
  checker.append(record(obs::TraceEvent::kCompareRelease, 1, 1, "e1"));
  EXPECT_FALSE(checker.report().ok());
}

TEST(QuorumTraceChecker, StreamHashDeterministicAndOrderSensitive) {
  QuorumTraceChecker a({.quorum = 2});
  QuorumTraceChecker b({.quorum = 2});
  QuorumTraceChecker c({.quorum = 2});
  const auto r1 = record(obs::TraceEvent::kCompareIngest, 1, 0);
  const auto r2 = record(obs::TraceEvent::kCompareIngest, 2, 1);
  a.append(r1);
  a.append(r2);
  b.append(r1);
  b.append(r2);
  c.append(r2);
  c.append(r1);
  EXPECT_EQ(a.stream_hash(), b.stream_hash());
  EXPECT_NE(a.stream_hash(), c.stream_hash());
}

TEST(QuorumTraceChecker, TeesToDownstreamSink) {
  obs::RingBufferSink downstream;
  QuorumTraceChecker checker({.quorum = 2}, &downstream);
  checker.append(record(obs::TraceEvent::kCompareIngest, 1, 0));
  EXPECT_EQ(downstream.records().size(), 1u);
  EXPECT_EQ(checker.records_seen(), 1u);
}

// --- §XII: fast-path releases and the weighted vote cache ------------------

TEST(QuorumTraceChecker, FastpathReleaseCountsItsOwnVote) {
  // The sampled mode's thinned trace: the release record itself names the
  // deciding replica, with no separate ingest record preceding it.
  QuorumTraceChecker checker({.quorum = 2, .first_copy = false});
  checker.append(record(obs::TraceEvent::kCompareFastpath, 1, 0));
  EXPECT_TRUE(checker.report().ok());
  EXPECT_EQ(checker.releases(), 1u);
}

TEST(QuorumTraceChecker, FastpathReleaseFromQuarantinedReplicaTrips) {
  QuorumTraceChecker::Config cfg;
  cfg.quorum = 3;
  cfg.k = 5;  // adaptive mode: track health records from the stream
  QuorumTraceChecker checker(cfg);
  checker.append(record(obs::TraceEvent::kHealthQuarantine, 0, 2, "health"));
  checker.append(record(obs::TraceEvent::kCompareFastpath, 1, 2));
  EXPECT_FALSE(checker.report().ok())
      << "a quarantined replica's first copy must never be trusted";
}

TEST(QuorumTraceChecker, FastpathFromQuarantinedTripsWithoutAdaptiveMode) {
  // The k == 0 (non-adaptive) config must still reject a quarantined
  // deciding replica: the fast-path release vote is OR'd in from the
  // release record itself, so it would otherwise bypass the quarantine
  // filter that adaptive mode applies to the counted mask.
  QuorumTraceChecker checker({.quorum = 2, .first_copy = false});
  checker.append(record(obs::TraceEvent::kHealthQuarantine, 0, 2, "health"));
  checker.append(record(obs::TraceEvent::kCompareFastpath, 1, 2));
  EXPECT_FALSE(checker.report().ok())
      << "quarantined fast-path vote passed the non-adaptive checker";
}

TEST(QuorumTraceChecker, DuplicateEgressOnSameWireCounted) {
  QuorumTraceChecker::Config cfg;
  cfg.first_copy = true;
  cfg.check_duplicates = true;
  QuorumTraceChecker checker(cfg);
  // Primary and standby feed the same wire (suffix after '/'): a second
  // release of the same packet id inside the window is the split-brain
  // duplicate this invariant hunts.
  checker.append(record(obs::TraceEvent::kCompareFastpath, 7, 0,
                        "compare/netco-e0"));
  checker.append(record(obs::TraceEvent::kCompareIngest, 7, 1,
                        "standby/netco-e0"));
  checker.append(record(obs::TraceEvent::kCompareRelease, 7, 1,
                        "standby/netco-e0"));
  EXPECT_EQ(checker.duplicates(), 1u);
  // A different wire is a different egress: no duplicate.
  checker.append(record(obs::TraceEvent::kCompareIngest, 7, 1,
                        "compare/netco-e1"));
  checker.append(record(obs::TraceEvent::kCompareRelease, 7, 1,
                        "compare/netco-e1"));
  EXPECT_EQ(checker.duplicates(), 1u);
}

TEST(QuorumTraceChecker, EgressSetHashIsOrderIndependent) {
  // The differential anchor: two runs that release the same multiset of
  // packets onto the same wires agree, whatever the interleaving.
  QuorumTraceChecker a({.quorum = 2});
  QuorumTraceChecker b({.quorum = 2});
  a.append(record(obs::TraceEvent::kCompareFastpath, 1, 0, "compare/e0"));
  a.append(record(obs::TraceEvent::kCompareFastpath, 2, 1, "compare/e1"));
  b.append(record(obs::TraceEvent::kCompareFastpath, 2, 1, "compare/e1"));
  b.append(record(obs::TraceEvent::kCompareFastpath, 1, 0, "compare/e0"));
  EXPECT_EQ(a.egress_set_hash(), b.egress_set_hash());
  EXPECT_NE(a.stream_hash(), b.stream_hash());  // order still fingerprinted

  QuorumTraceChecker c({.quorum = 2});
  c.append(record(obs::TraceEvent::kCompareFastpath, 1, 0, "compare/e0"));
  c.append(record(obs::TraceEvent::kCompareFastpath, 3, 1, "compare/e1"));
  EXPECT_NE(a.egress_set_hash(), c.egress_set_hash());
}

net::Packet numbered_packet(std::uint32_t n) {
  std::vector<std::byte> data(64, std::byte{0});
  return net::build_udp(
      net::EthernetHeader{.dst = net::MacAddress::from_id(2),
                          .src = net::MacAddress::from_id(1)},
      std::nullopt,
      net::Ipv4Header{.src = net::Ipv4Address::from_id(1),
                      .dst = net::Ipv4Address::from_id(2),
                      .identification = static_cast<std::uint16_t>(n)},
      net::UdpHeader{.src_port = static_cast<std::uint16_t>(n >> 16),
                     .dst_port = 5001},
      data);
}

sim::TimePoint at_ms(std::int64_t ms) {
  return sim::TimePoint::origin() + sim::Duration::milliseconds(ms);
}

TEST(CheckAudit, VoteCacheSqueezeNeverStrandsEntries) {
  // The accounting audit the issue asks for: drive the weighted vote
  // cache through quota pressure, then squeeze the shared capacity knob,
  // and prove every insert is conserved — still resident, or counted in
  // exactly one eviction bucket. A stranded entry (dropped from the cache
  // without an eviction record) would break the fast path's garbage
  // attribution, so conservation is checked exactly, not as >=.
  core::CompareConfig config{.k = 3};
  config.sampling.enabled = true;
  config.sampling.vote_capacity = 64;
  config.sampling.vote_quota = 40;
  core::CompareCore core(config);

  // Replica 0 out of the live set: its copies vote with weight 0 and
  // never release, so every entry stays a quota-holding singleton and the
  // per-replica quota is the binding constraint first.
  core.set_replica_live(0, false, at_ms(0));

  const std::uint32_t kPackets = 100;
  for (std::uint32_t i = 1; i <= kPackets; ++i) {
    core.ingest_sampled(0, numbered_packet(i), at_ms(1));
  }
  const core::WeightedVoteCache* vc = core.vote_cache();
  ASSERT_NE(vc, nullptr);

  // Quota phase: size pinned at the quota plus the escalated routing
  // memos (1-in-period elections, quota-exempt), overflow evicted as
  // quota casualties, and nothing unaccounted.
  const std::uint64_t memos = core.stats().sampled_escalated;
  EXPECT_EQ(vc->size(), config.sampling.vote_quota + memos);
  EXPECT_EQ(vc->size() + vc->evicted_capacity() + vc->evicted_quota(),
            kPackets);
  {
    InvariantReport report;
    check_audit(core.audit(), "edge", report);
    EXPECT_TRUE(report.ok()) << (report.details.empty()
                                     ? std::string{}
                                     : report.details.front());
  }

  // Squeeze: the full-cache capacity knob binds the vote cache too
  // (min(vote_capacity, capacity) = 16), expelling the surplus as
  // capacity casualties.
  core.set_cache_capacity(16, at_ms(2));
  EXPECT_EQ(vc->capacity(), 16u);
  EXPECT_LE(vc->size(), vc->capacity());
  EXPECT_EQ(vc->size() + vc->evicted_capacity() + vc->evicted_quota(),
            kPackets);
  {
    InvariantReport report;
    check_audit(core.audit(), "edge", report);
    EXPECT_TRUE(report.ok()) << (report.details.empty()
                                     ? std::string{}
                                     : report.details.front());
  }

  // Release the squeeze and keep running: the cache regrows and the
  // conservation ledger still balances.
  core.set_cache_capacity(2048, at_ms(3));
  EXPECT_EQ(vc->capacity(), config.sampling.vote_capacity);
  for (std::uint32_t i = kPackets + 1; i <= kPackets + 10; ++i) {
    core.ingest_sampled(0, numbered_packet(i), at_ms(4));
  }
  EXPECT_EQ(vc->size() + vc->evicted_capacity() + vc->evicted_quota(),
            kPackets + 10);
  {
    InvariantReport report;
    check_audit(core.audit(), "edge", report);
    EXPECT_TRUE(report.ok()) << (report.details.empty()
                                     ? std::string{}
                                     : report.details.front());
  }
}

// Returns the first packet number >= `start` whose key is NOT elected for
// the full compare under `core`'s sampling config (its first fast-path
// ingest either releases or votes, never escalates).
std::uint32_t first_fastpath_packet(core::CompareCore& core,
                                    std::uint32_t start, int replica,
                                    sim::TimePoint at,
                                    core::FastResult& result) {
  for (std::uint32_t n = start;; ++n) {
    result = core.ingest_sampled(replica, numbered_packet(n), at);
    if (!result.escalated) return n;
  }
}

TEST(FastPath, ReleasedSlotEvictionCannotDuplicateEgress) {
  // The cache-squeeze duplicate: a fast-path release whose vote-cache
  // slot is then evicted under capacity pressure while sibling copies are
  // still in flight. Without the release tombstone the next copy found a
  // vacant key, re-ran the (deterministic, fast-path) election, and
  // released the same packet a second time via healthy-first-copy.
  core::CompareConfig config{.k = 3};
  config.sampling.enabled = true;
  core::CompareCore core(config);

  core::FastResult first;
  const std::uint32_t n = first_fastpath_packet(core, 1, 0, at_ms(1), first);
  ASSERT_TRUE(first.released.has_value());  // healthy first copy released
  EXPECT_EQ(core.stats().fastpath_released, 1u);

  // Squeeze both stores to a single slot: the released slot is expelled
  // (it is the only capacity victim available).
  core.set_cache_capacity(1, at_ms(1));
  core::FastResult other;
  first_fastpath_packet(core, n + 1, 1, at_ms(1), other);
  ASSERT_EQ(core.vote_cache()->find(
                numbered_packet(n).content_hash()),
            core::WeightedVoteCache::kNil)
      << "test premise: the released slot must be gone";
  const std::uint64_t released_before = core.stats().fastpath_released;

  // A sibling copy inside the hold window lands on the tombstone: late
  // noise, never a second egress.
  const core::FastResult dup = core.ingest_sampled(1, numbered_packet(n),
                                                   at_ms(2));
  EXPECT_FALSE(dup.escalated);
  EXPECT_FALSE(dup.released.has_value());
  EXPECT_EQ(core.stats().fastpath_released, released_before);
  EXPECT_GE(core.stats().late_after_release, 1u);

  // Beyond the hold window the tombstone has expired: a same-hash packet
  // is a legitimate repeat and releases afresh, exactly like the full
  // cache's recreate-after-expiry semantics.
  const core::FastResult later = core.ingest_sampled(0, numbered_packet(n),
                                                     at_ms(30));
  EXPECT_TRUE(later.released.has_value());
}

TEST(FastPath, StragglerAfterSweptReleaseIsLateNotReleased) {
  // Same invariant through the sweep path: the released slot dies at the
  // hold timeout, and a straggler arriving within one more hold window
  // must be absorbed, not re-elected into a fresh releasable slot.
  core::CompareConfig config{.k = 3};
  config.sampling.enabled = true;
  core::CompareCore core(config);

  core::FastResult first;
  const std::uint32_t n = first_fastpath_packet(core, 1, 0, at_ms(1), first);
  ASSERT_TRUE(first.released.has_value());

  core.sweep(at_ms(25));  // hold_timeout (20 ms) expired: slot dies
  ASSERT_EQ(core.vote_cache()->find(
                numbered_packet(n).content_hash()),
            core::WeightedVoteCache::kNil);

  const core::FastResult dup = core.ingest_sampled(1, numbered_packet(n),
                                                   at_ms(30));
  EXPECT_FALSE(dup.escalated);
  EXPECT_FALSE(dup.released.has_value());
  EXPECT_EQ(core.stats().fastpath_released, 1u);

  // One hold window after the sweep the key is fresh again.
  const core::FastResult later = core.ingest_sampled(0, numbered_packet(n),
                                                     at_ms(60));
  EXPECT_TRUE(later.released.has_value());
  EXPECT_EQ(core.stats().fastpath_released, 2u);
}

TEST(CheckAudit, TripsOnVoteCacheDrift) {
  core::CompareAudit audit;
  audit.cache_capacity = 8;
  audit.vote_active = true;
  audit.vote.consistent = false;
  InvariantReport report;
  check_audit(audit, "edge", report);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.details.empty());
  EXPECT_NE(report.details.front().find("vote cache"), std::string::npos);
}

TEST(CheckAudit, TripsOnVoteQuotaLeak) {
  core::CompareAudit audit;
  audit.cache_capacity = 8;
  audit.vote_active = true;
  audit.vote.capacity = 8;
  audit.vote.quota_counts = {3, 0};     // counter says 3 slots held...
  audit.vote.live_quota_held = {0, 0};  // ...recount says none: a leak
  InvariantReport report;
  check_audit(audit, "edge", report);
  EXPECT_FALSE(report.ok());
}

TEST(CheckAudit, IgnoresVoteFieldsWhileSamplingInactive) {
  core::CompareAudit audit;
  audit.cache_capacity = 8;
  audit.vote_active = false;
  audit.vote.consistent = false;  // garbage, but the store is off
  InvariantReport report;
  check_audit(audit, "edge", report);
  EXPECT_TRUE(report.ok());
}

}  // namespace
}  // namespace netco::faultinject
