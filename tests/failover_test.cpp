// Tests for the static failover layer: the FlowTable liveness guard, the
// failover-rule compiler, the reroute-loop audit, and the end-to-end
// survive-a-kill scenarios (scenario/failover.h).
#include <gtest/gtest.h>

#include "failover/failover_compiler.h"
#include "faultinject/fabric_injector.h"
#include "faultinject/invariants.h"
#include "openflow/flow_table.h"
#include "scenario/failover.h"
#include "topo/fattree.h"

namespace netco {
namespace {

using openflow::FlowSpec;
using openflow::FlowTable;
using openflow::Match;

// --- FlowTable liveness guard ----------------------------------------------

TEST(FailoverGuard, LookupSkipsDeadGuardedEntry) {
  FlowTable table;
  const auto now = sim::TimePoint::origin();
  const auto dst = net::MacAddress::from_id(7);

  FlowSpec primary;
  primary.match = Match{}.with_dl_dst(dst);
  primary.actions = {openflow::OutputAction::to(1)};
  primary.priority = 10;
  primary.guard_port = 1;
  table.add(primary, now);

  FlowSpec backup;
  backup.match = Match{}.with_dl_dst(dst);
  backup.actions = {openflow::OutputAction::to(2)};
  backup.priority = 9;
  backup.cookie = openflow::kFailoverCookie;
  table.add(backup, now);

  const Match key = Match{}.with_dl_dst(dst);

  // All ports live: the guarded primary wins, nothing is skipped.
  std::vector<bool> dead(4, false);
  bool skipped = true;
  openflow::FlowEntry* hit = table.lookup(key, 64, now, &dead, &skipped);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->spec.priority, 10);
  EXPECT_FALSE(skipped);

  // Port 1 dead: the backup takes over and the skip is reported.
  dead[1] = true;
  hit = table.lookup(key, 64, now, &dead, &skipped);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->spec.priority, 9);
  EXPECT_EQ(hit->spec.cookie, openflow::kFailoverCookie);
  EXPECT_TRUE(skipped);

  // Recovery: the primary rule matches again.
  dead[1] = false;
  hit = table.lookup(key, 64, now, &dead, &skipped);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->spec.priority, 10);
  EXPECT_FALSE(skipped);

  // Without a liveness vector the guard is inert (legacy callers).
  hit = table.lookup(key, 64, now);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->spec.priority, 10);
}

TEST(FailoverGuard, AllGuardedEntriesDeadIsAMiss) {
  FlowTable table;
  const auto now = sim::TimePoint::origin();
  const auto dst = net::MacAddress::from_id(9);
  FlowSpec only;
  only.match = Match{}.with_dl_dst(dst);
  only.actions = {openflow::OutputAction::to(0)};
  only.priority = 5;
  only.guard_port = 0;
  table.add(only, now);

  std::vector<bool> dead{true};
  bool skipped = false;
  EXPECT_EQ(table.lookup(Match{}.with_dl_dst(dst), 64, now, &dead, &skipped),
            nullptr);
  EXPECT_TRUE(skipped);
}

// --- the compiler -----------------------------------------------------------

TEST(FailoverCompiler, CompilesGuardedLayerForPlainFatTree) {
  topo::FatTreeOptions topts;
  topts.k = 4;
  topo::FatTreeTopology topo(topts);
  const failover::CompileSummary summary = failover::compile_failover(topo);

  const int k = 4;
  const int h = 2;
  EXPECT_EQ(summary.macs, static_cast<std::size_t>(k * h * h));
  // Every edge, aggregation, and core switch gets rules.
  EXPECT_EQ(summary.switches_touched,
            static_cast<std::size_t>(k * h + k * h + h * h));
  EXPECT_GT(summary.rules_installed, 0u);
  EXPECT_GT(summary.primaries_guarded, 0u);

  // Spot-check an edge switch: the primary route toward a remote host is
  // now guarded by its up-port, and backup rules carry the cookie.
  const auto remote = topo.host(1, 0, 0).mac();
  bool guarded_primary = false;
  bool cookied_backup = false;
  for (const openflow::FlowEntry& entry : topo.edge(0, 0).table().entries()) {
    if (entry.spec.priority == 10 && entry.spec.match.covers(
            Match{}.with_dl_dst(remote))) {
      guarded_primary |= entry.spec.guard_port != device::kNoPort;
    }
    cookied_backup |= entry.spec.cookie == openflow::kFailoverCookie;
  }
  EXPECT_TRUE(guarded_primary);
  EXPECT_TRUE(cookied_backup);
}

TEST(FailoverCompiler, RecompileIsIdempotent) {
  topo::FatTreeOptions topts;
  topts.k = 4;
  topo::FatTreeTopology topo(topts);
  const auto first = failover::compile_failover(topo);
  const std::size_t size_after_first = topo.edge(0, 0).table().size();
  const auto second = failover::compile_failover(topo);
  EXPECT_EQ(first.rules_installed, second.rules_installed);
  EXPECT_EQ(topo.edge(0, 0).table().size(), size_after_first);
}

TEST(FailoverCompiler, SkipsWrappedCombinerPosition) {
  topo::FatTreeOptions topts;
  topts.k = 4;
  topts.combine_agg = topo::AggPosition{.pod = 0, .index = 0};
  topts.combiner.k = 3;
  topo::FatTreeTopology topo(topts);
  const auto summary = failover::compile_failover(topo);
  // One aggregation position is the combiner and gets no compiled rules.
  EXPECT_EQ(summary.switches_touched,
            static_cast<std::size_t>(4 * 2 + 4 * 2 - 1 + 2 * 2));
}

// --- reroute-loop audit ------------------------------------------------------

TEST(RerouteAudit, FlagsSameStateRevisitAsLoop) {
  faultinject::QuorumTraceChecker checker(
      {.quorum = 1, .check_duplicates = true, .audit_reroutes = true});
  obs::TraceRecord record;
  record.event = obs::TraceEvent::kFailoverReroute;
  record.component = "netco-a0-0";
  record.packet_id = 0xABCD;
  record.at_ns = 1'000;
  checker.append(record);
  EXPECT_EQ(checker.duplicates(), 0u);
  // A different packet rerouted at the same switch is fine.
  record.packet_id = 0xABCE;
  record.at_ns = 2'000;
  checker.append(record);
  EXPECT_EQ(checker.duplicates(), 0u);
  // The same packet id at the same switch inside the window is a loop.
  record.packet_id = 0xABCD;
  record.at_ns = 3'000;
  checker.append(record);
  EXPECT_EQ(checker.duplicates(), 1u);
  EXPECT_EQ(checker.report().violations, 1u);
  EXPECT_EQ(checker.reroutes(), 3u);
}

TEST(RerouteAudit, DisabledByDefault) {
  faultinject::QuorumTraceChecker checker({.quorum = 1,
                                           .check_duplicates = true});
  obs::TraceRecord record;
  record.event = obs::TraceEvent::kFailoverReroute;
  record.component = "netco-a0-0";
  record.packet_id = 0xABCD;
  checker.append(record);
  record.at_ns = 1'000;
  checker.append(record);
  EXPECT_EQ(checker.reroutes(), 2u);
  EXPECT_EQ(checker.duplicates(), 0u);
}

// --- end-to-end -------------------------------------------------------------

scenario::FailoverOptions quick_options() {
  scenario::FailoverOptions options;
  options.seed = 1;
  return options;  // the 500 ms defaults are already CI-sized
}

TEST(FailoverE2ETest, BaselineCarriesEverything) {
  const auto r = scenario::run_failover(quick_options());
  EXPECT_EQ(r.data_delivered, r.data_sent);
  EXPECT_EQ(r.fault_events, 0u);
  EXPECT_EQ(r.failover_reroutes, 0u);
  EXPECT_EQ(r.invariant_violations, 0u);
  EXPECT_TRUE(r.absorbed);
}

TEST(FailoverE2ETest, SingleLinkCutAbsorbedByStaticRules) {
  scenario::FailoverOptions options = quick_options();
  options.link_cuts = 1;
  options.target = faultinject::KillTarget::kPrimaryPath;
  const auto r = scenario::run_failover(options);
  EXPECT_EQ(r.fault_events, 1u);
  EXPECT_TRUE(r.recovered);
  EXPECT_TRUE(r.absorbed);
  EXPECT_LT(r.goodput_dip, 1.0);  // the cut provably hit traffic
  EXPECT_GT(r.failover_reroutes, 0u);
  EXPECT_GT(r.static_backup_hits, 0u);
  EXPECT_EQ(r.controller_packet_ins, 0u);  // no controller in the loop
  EXPECT_EQ(r.duplicates, 0u);
  EXPECT_EQ(r.invariant_violations, 0u);
  EXPECT_GT(r.reroute_latency_ns, 0);
}

TEST(FailoverE2ETest, SingleSwitchKillAbsorbedByStaticRules) {
  scenario::FailoverOptions options = quick_options();
  options.switch_kills = 1;
  options.target = faultinject::KillTarget::kPrimaryPath;
  const auto r = scenario::run_failover(options);
  EXPECT_EQ(r.fault_events, 1u);
  EXPECT_TRUE(r.absorbed);
  EXPECT_LT(r.goodput_dip, 1.0);
  EXPECT_GT(r.failover_reroutes, 0u);
  EXPECT_EQ(r.controller_packet_ins, 0u);
  EXPECT_EQ(r.invariant_violations, 0u);
}

TEST(FailoverE2ETest, DownPathCutTakesVlanDetourWithoutLooping) {
  // Cut the agg(1,0) → edge(1,0) down-link explicitly: traffic into pod 1
  // must cross to aggregation index 1, which is only reachable by tagging
  // the packet down to a sibling edge and re-ascending — the VLAN
  // hop-budget detour. The audit proves no packet revisited a switch.
  scenario::FailoverOptions options = quick_options();
  topo::FatTreeTopology scratch(topo::FatTreeOptions{});  // sid arithmetic
  faultinject::FaultEvent cut;
  cut.at_ns = options.fail_at.ns();
  cut.kind = faultinject::FaultKind::kFabricLinkCut;
  cut.node = scratch.agg_sid(1, 0);
  cut.peer = scratch.edge_sid(1, 0);
  options.plan.events.push_back(cut);
  const auto r = scenario::run_failover(options);
  EXPECT_EQ(r.fault_events, 1u);
  EXPECT_TRUE(r.absorbed);
  EXPECT_GT(r.checker_reroutes, 0u);
  EXPECT_EQ(r.duplicates, 0u);  // the hop budget never looped
  EXPECT_EQ(r.invariant_violations, 0u);
}

TEST(FailoverE2ETest, CorrelatedMultiFailureSmoke) {
  scenario::FailoverOptions options = quick_options();
  options.link_cuts = 2;
  options.target = faultinject::KillTarget::kPrimaryPath;
  const auto r = scenario::run_failover(options);
  EXPECT_EQ(r.fault_events, 2u);
  EXPECT_TRUE(r.absorbed);
  EXPECT_GT(r.failover_reroutes, 0u);
  EXPECT_EQ(r.invariant_violations, 0u);
}

TEST(FailoverE2ETest, AblationWithoutCompilerDoesNotSurvive) {
  scenario::FailoverOptions options = quick_options();
  options.compile_backup_rules = false;
  options.link_cuts = 1;
  options.target = faultinject::KillTarget::kPrimaryPath;
  const auto r = scenario::run_failover(options);
  EXPECT_EQ(r.backup_rules_installed, 0u);
  EXPECT_FALSE(r.recovered);
  EXPECT_FALSE(r.absorbed);
  EXPECT_LT(r.goodput_overall, 1.0);
  EXPECT_EQ(r.failover_reroutes, 0u);  // nothing to reroute onto
}

TEST(FailoverFleetTest, DeterministicSoloAndShardedFleet) {
  scenario::FailoverOptions options = quick_options();
  options.link_cuts = 1;
  options.target = faultinject::KillTarget::kPrimaryPath;

  const auto solo_a = scenario::run_failover(options);
  const auto solo_b = scenario::run_failover(options);
  EXPECT_EQ(solo_a.stream_hash, solo_b.stream_hash);
  EXPECT_EQ(solo_a.data_delivered, solo_b.data_delivered);

  const auto fleet1 = scenario::run_failover_fleet(options, 1, 1);
  EXPECT_EQ(fleet1.merged_stream_hash, solo_a.stream_hash);

  const auto fleet2a = scenario::run_failover_fleet(options, 2, 1);
  const auto fleet2b = scenario::run_failover_fleet(options, 2, 2);
  EXPECT_EQ(fleet2a.merged_stream_hash, fleet2b.merged_stream_hash);
  ASSERT_EQ(fleet2a.circuits.size(), 2u);
  EXPECT_TRUE(fleet2a.circuits[0].absorbed);
  EXPECT_EQ(fleet2a.circuits[0].stream_hash, solo_a.stream_hash);
}

}  // namespace
}  // namespace netco
