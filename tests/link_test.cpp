// Unit tests for the link layer: serialization, propagation, queueing,
// drop-tail behaviour, and the Node/Network wiring.
#include <gtest/gtest.h>

#include <vector>

#include "device/network.h"
#include "device/node.h"
#include "link/link.h"
#include "obs/observability.h"
#include "sim/shard.h"
#include "sim/simulator.h"

namespace netco {
namespace {

using device::Network;
using device::Node;
using device::PortIndex;

/// Test node that records every delivery with its arrival time.
class SinkNode : public Node {
 public:
  using Node::Node;
  void handle_packet(PortIndex in_port, net::Packet packet) override {
    arrivals.push_back({simulator().now(), in_port, std::move(packet)});
  }
  struct Arrival {
    sim::TimePoint at;
    PortIndex port;
    net::Packet packet;
  };
  std::vector<Arrival> arrivals;
};

net::Packet frame(std::size_t size) { return net::Packet::zeroed(size); }

TEST(Link, DeliveryTimeIsSerializationPlusPropagation) {
  sim::Simulator sim;
  Network net(sim);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  link::LinkConfig config;
  config.rate = DataRate::gigabits_per_sec(1);
  config.propagation = sim::Duration::microseconds(5);
  net.connect(a, b, config);

  a.send(0, frame(1500));  // 12 µs serialization + 5 µs propagation
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].at.ns(), sim::Duration::microseconds(17).ns());
}

TEST(Link, BackToBackPacketsSerializeSequentially) {
  sim::Simulator sim;
  Network net(sim);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  link::LinkConfig config;
  config.rate = DataRate::gigabits_per_sec(1);
  config.propagation = sim::Duration::zero();
  net.connect(a, b, config);

  a.send(0, frame(1500));
  a.send(0, frame(1500));
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 2u);
  EXPECT_EQ(b.arrivals[0].at.ns(), sim::Duration::microseconds(12).ns());
  EXPECT_EQ(b.arrivals[1].at.ns(), sim::Duration::microseconds(24).ns());
}

TEST(Link, FullDuplexDirectionsAreIndependent) {
  sim::Simulator sim;
  Network net(sim);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  net.connect(a, b);

  a.send(0, frame(100));
  b.send(0, frame(100));
  sim.run();
  EXPECT_EQ(a.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals.size(), 1u);
}

TEST(Link, DropTailWhenQueueFull) {
  sim::Simulator sim;
  Network net(sim);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  link::LinkConfig config;
  config.rate = DataRate::megabits_per_sec(10);  // slow: 1500B = 1.2 ms
  config.queue_bytes = 3000;                     // room for 2 queued frames
  const auto conn = net.connect(a, b, config);

  for (int i = 0; i < 5; ++i) a.send(0, frame(1500));
  sim.run();
  // 1 in flight + 2 queued = 3 delivered; 2 dropped.
  EXPECT_EQ(b.arrivals.size(), 3u);
  EXPECT_EQ(conn.link->forward().stats().dropped_packets, 2u);
  EXPECT_EQ(conn.link->forward().stats().tx_packets, 3u);
  EXPECT_EQ(conn.link->forward().stats().tx_bytes, 4500u);
}

TEST(Link, QueueDrainsAndAcceptsAgain) {
  sim::Simulator sim;
  Network net(sim);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  link::LinkConfig config;
  config.rate = DataRate::megabits_per_sec(10);
  config.queue_bytes = 1500;
  net.connect(a, b, config);

  a.send(0, frame(1500));
  a.send(0, frame(1500));
  sim.run();  // both delivered (one in flight, one queued)
  a.send(0, frame(1500));
  sim.run();
  EXPECT_EQ(b.arrivals.size(), 3u);
}

TEST(Link, StatsTrackHighWaterMark) {
  sim::Simulator sim;
  Network net(sim);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  link::LinkConfig config;
  config.rate = DataRate::megabits_per_sec(10);
  config.queue_bytes = 10'000;
  const auto conn = net.connect(a, b, config);

  for (int i = 0; i < 4; ++i) a.send(0, frame(1000));
  sim.run();
  EXPECT_EQ(conn.link->forward().stats().max_queue_bytes, 3000u);
}

TEST(Node, FloodCopiesToAllButExcept) {
  sim::Simulator sim;
  Network net(sim);
  auto& hub = net.add_node<SinkNode>("hub");
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  auto& c = net.add_node<SinkNode>("c");
  net.connect(hub, a);
  net.connect(hub, b);
  net.connect(hub, c);

  hub.flood(0, frame(64));  // skip port 0 (toward a)
  sim.run();
  EXPECT_EQ(a.arrivals.size(), 0u);
  EXPECT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(c.arrivals.size(), 1u);

  hub.flood(device::kNoPort, frame(64));  // all ports
  sim.run();
  EXPECT_EQ(a.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals.size(), 2u);
}

TEST(Network, FindByName) {
  sim::Simulator sim;
  Network net(sim);
  auto& a = net.add_node<SinkNode>("alpha");
  EXPECT_EQ(net.find("alpha"), &a);
  EXPECT_EQ(net.find("beta"), nullptr);
}

TEST(Network, ConnectAllocatesSequentialPorts) {
  sim::Simulator sim;
  Network net(sim);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  auto& c = net.add_node<SinkNode>("c");
  const auto ab = net.connect(a, b);
  const auto ac = net.connect(a, c);
  EXPECT_EQ(ab.a_port, 0u);
  EXPECT_EQ(ac.a_port, 1u);
  EXPECT_EQ(ab.b_port, 0u);
  EXPECT_EQ(ac.b_port, 0u);
  EXPECT_EQ(a.port_count(), 2u);
}

TEST(Node, PacketContentSurvivesTransit) {
  sim::Simulator sim;
  Network net(sim);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  net.connect(a, b);

  net::Packet p = frame(64);
  p.set_u8(10, 0x42);
  a.send(0, p);
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].packet, p);
}

TEST(Link, DownChannelDiscards) {
  sim::Simulator sim;
  Network net(sim);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  const auto conn = net.connect(a, b);

  conn.link->set_down(true);
  a.send(0, frame(100));
  b.send(0, frame(100));
  sim.run();
  EXPECT_EQ(a.arrivals.size(), 0u);
  EXPECT_EQ(b.arrivals.size(), 0u);
  EXPECT_EQ(conn.link->forward().stats().dropped_down, 1u);
  EXPECT_EQ(conn.link->reverse().stats().dropped_down, 1u);

  conn.link->set_down(false);
  a.send(0, frame(100));
  sim.run();
  EXPECT_EQ(b.arrivals.size(), 1u);
}

TEST(Link, LossyChannelDropsAndTracesOwningLinkName) {
  sim::Simulator sim;
  Network net(sim);
  auto& a = net.add_node<SinkNode>("alpha");
  auto& b = net.add_node<SinkNode>("bravo");
  const auto conn = net.connect(a, b);
  conn.link->set_loss(1.0);

  obs::RingBufferSink ring;
  obs::ScopedTraceSink scoped(ring);
  a.send(0, frame(100));
  b.send(0, frame(100));
  sim.run();

  EXPECT_EQ(a.arrivals.size(), 0u);
  EXPECT_EQ(b.arrivals.size(), 0u);
  EXPECT_EQ(conn.link->forward().stats().dropped_loss, 1u);
  EXPECT_EQ(conn.link->reverse().stats().dropped_loss, 1u);
  // Trace records name the owning link per direction — not a literal
  // "link" — so multi-link topologies stay attributable.
  ASSERT_EQ(ring.records().size(), 2u);
  EXPECT_EQ(ring.records()[0].event, obs::TraceEvent::kLinkLoss);
  EXPECT_EQ(ring.records()[0].component, "alpha->bravo");
  EXPECT_EQ(ring.records()[1].component, "bravo->alpha");

  conn.link->set_loss(0.0);
  a.send(0, frame(100));
  sim.run();
  EXPECT_EQ(b.arrivals.size(), 1u);
}

TEST(Link, ExtraLatencyDelaysDelivery) {
  sim::Simulator sim;
  Network net(sim);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  const auto conn = net.connect(a, b);

  a.send(0, frame(100));
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 1u);
  const sim::TimePoint base = b.arrivals[0].at;

  conn.link->set_extra_latency(sim::Duration::milliseconds(3));
  const sim::TimePoint resent = sim.now();
  a.send(0, frame(100));
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 2u);
  EXPECT_EQ((b.arrivals[1].at - resent) - (base - sim::TimePoint::origin()),
            sim::Duration::milliseconds(3));
}

TEST(Link, InFlightPacketStillArrivesAfterCut) {
  sim::Simulator sim;
  Network net(sim);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  link::LinkConfig config;
  config.propagation = sim::Duration::milliseconds(5);
  const auto conn = net.connect(a, b, config);

  a.send(0, frame(100));
  sim.schedule_after(sim::Duration::milliseconds(1),
                     [&] { conn.link->set_down(true); });
  sim.run();
  EXPECT_EQ(b.arrivals.size(), 1u);  // already on the wire
}

TEST(Link, BindRemotePostsOverShardChannel) {
  sim::Simulator sim;
  link::LinkConfig config;
  config.rate = DataRate::gigabits_per_sec(1);
  config.propagation = sim::Duration::microseconds(5);
  link::Channel tx(sim, config);
  sim::ShardChannel shard(0, 1, config.propagation, 64);

  std::vector<std::size_t> delivered;
  tx.bind_remote(shard, [&](net::Packet packet) {
    delivered.push_back(packet.size());
  });
  tx.send(frame(1500));  // 12 µs serialization + 5 µs propagation
  sim.run();

  // Nothing runs on the local event loop; the delivery sits in the
  // cross-shard channel, stamped with the wire arrival time.
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(tx.stats().tx_packets, 1u);
  sim::ShardChannel::Message msg;
  ASSERT_TRUE(shard.pop(msg));
  EXPECT_EQ(msg.deliver_ns, sim::Duration::microseconds(17).ns());
  msg.fn();  // what the receiving shard's simulator would execute
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], 1500u);
  EXPECT_FALSE(shard.pop(msg));
}

TEST(Link, BindRemoteKeepsQueueingSemantics) {
  // Back-to-back sends must serialize sequentially before crossing the
  // shard boundary — remote mode changes the delivery path, not the
  // transmitter model.
  sim::Simulator sim;
  link::LinkConfig config;
  config.rate = DataRate::gigabits_per_sec(1);
  config.propagation = sim::Duration::microseconds(1);
  link::Channel tx(sim, config);
  sim::ShardChannel shard(0, 1, sim::Duration::microseconds(1), 64);
  tx.bind_remote(shard, [](net::Packet) {});

  tx.send(frame(1500));  // 12 µs on the wire
  tx.send(frame(1500));  // queued behind the first
  sim.run();

  sim::ShardChannel::Message first;
  sim::ShardChannel::Message second;
  ASSERT_TRUE(shard.pop(first));
  ASSERT_TRUE(shard.pop(second));
  EXPECT_EQ(first.deliver_ns, sim::Duration::microseconds(13).ns());
  EXPECT_EQ(second.deliver_ns, sim::Duration::microseconds(25).ns());
  EXPECT_LT(first.seq, second.seq);
}

}  // namespace
}  // namespace netco
