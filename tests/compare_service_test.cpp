// Focused tests for the CompareService deployment wrapper (out-of-band
// compare process): port- and VLAN-keyed replica identity, verify-only
// mode, unknown-port handling, and the middlebox node's service model.
#include <gtest/gtest.h>

#include "controller/controller.h"
#include "device/network.h"
#include "net/headers.h"
#include "netco/compare_service.h"
#include "netco/middlebox.h"
#include "openflow/switch.h"

namespace netco::core {
namespace {

using device::Network;

class Probe : public device::Node {
 public:
  using Node::Node;
  void handle_packet(device::PortIndex port, net::Packet packet) override {
    received.push_back({port, std::move(packet)});
  }
  std::vector<std::pair<device::PortIndex, net::Packet>> received;
};

net::Packet udp_packet(std::uint16_t id,
                       std::optional<net::VlanTag> vlan = std::nullopt) {
  std::vector<std::byte> payload(32, std::byte{0x11});
  return net::build_udp(
      net::EthernetHeader{.dst = net::MacAddress::from_id(2),
                          .src = net::MacAddress::from_id(1)},
      vlan,
      net::Ipv4Header{.src = net::Ipv4Address::from_id(1),
                      .dst = net::Ipv4Address::from_id(2),
                      .identification = id},
      net::UdpHeader{.src_port = 1, .dst_port = 2}, payload);
}

/// Edge switch with three ingress probes (ports 0..2 = replicas) and one
/// egress probe (port 3), compare attached out-of-band.
struct ServiceFixture {
  sim::Simulator sim;
  Network net{sim};
  openflow::OpenFlowSwitch& edge;
  Probe& r0;
  Probe& r1;
  Probe& r2;
  Probe& out;
  CompareService service;
  controller::Controller controller;

  explicit ServiceFixture(bool verify_only = false)
      : edge(net.add_node<openflow::OpenFlowSwitch>("edge")),
        r0(net.add_node<Probe>("r0")),
        r1(net.add_node<Probe>("r1")),
        r2(net.add_node<Probe>("r2")),
        out(net.add_node<Probe>("out")),
        controller(sim, "cmp", service) {
    net.connect(edge, r0);
    net.connect(edge, r1);
    net.connect(edge, r2);
    net.connect(edge, out);

    const auto now = sim.now();
    for (device::PortIndex p = 0; p < 3; ++p) {
      openflow::FlowSpec punt;
      punt.match.with_in_port(p);
      punt.actions = {openflow::OutputAction::controller()};
      punt.priority = 20;
      edge.table().add(std::move(punt), now);
    }
    openflow::FlowSpec route;
    route.match.with_dl_dst(net::MacAddress::from_id(2));
    route.actions = {openflow::OutputAction::to(3)};
    route.priority = 10;
    edge.table().add(std::move(route), now);

    CompareService::EdgeConfig config;
    config.replica_ports = {{0, 0}, {1, 1}, {2, 2}};
    config.compare.k = 3;
    config.verify_only = verify_only;
    service.configure_edge("edge", std::move(config));
    controller.attach(edge);
  }
};

TEST(CompareService, MajorityReleaseReachesEgress) {
  ServiceFixture f;
  f.r0.send(0, udp_packet(1));
  f.r1.send(0, udp_packet(1));
  f.sim.run_for(sim::Duration::milliseconds(5));
  ASSERT_EQ(f.out.received.size(), 1u);
  EXPECT_EQ(f.out.received[0].second, udp_packet(1));
  const auto* stats = f.service.stats_for("edge");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->released, 1u);
}

TEST(CompareService, SingleCopyNeverReleases) {
  ServiceFixture f;
  f.r0.send(0, udp_packet(7));
  f.sim.run_for(sim::Duration::milliseconds(100));
  EXPECT_EQ(f.out.received.size(), 0u);
  EXPECT_GE(f.service.stats_for("edge")->evicted_timeout, 1u);
}

TEST(CompareService, VerifyOnlyNeverEmitsPacketOut) {
  ServiceFixture f(/*verify_only=*/true);
  f.r0.send(0, udp_packet(1));
  f.r1.send(0, udp_packet(1));
  f.r2.send(0, udp_packet(1));
  f.sim.run_for(sim::Duration::milliseconds(10));
  EXPECT_EQ(f.out.received.size(), 0u);
  EXPECT_GE(f.service.stats_for("edge")->ingested, 3u);
}

TEST(CompareService, UnknownPortCounted) {
  ServiceFixture f;
  // Punt traffic from the egress port (not a replica port).
  openflow::FlowSpec punt;
  punt.match.with_in_port(3);
  punt.actions = {openflow::OutputAction::controller()};
  punt.priority = 30;
  f.edge.table().add(std::move(punt), f.sim.now());
  f.out.send(0, udp_packet(9));
  f.sim.run_for(sim::Duration::milliseconds(5));
  EXPECT_EQ(f.service.unknown_port_drops(), 1u);
}

TEST(CompareService, UnconfiguredSwitchIgnored) {
  ServiceFixture f;
  // A second switch attaches without configure_edge: packet-ins no-op.
  auto& other = f.net.add_node<openflow::OpenFlowSwitch>("other");
  auto& probe = f.net.add_node<Probe>("p");
  f.net.connect(other, probe);
  f.controller.attach(other);
  probe.send(0, udp_packet(3));  // miss → packet-in to the service
  f.sim.run_for(sim::Duration::milliseconds(5));
  EXPECT_EQ(f.service.stats_for("other"), nullptr);
}

TEST(CompareService, VlanKeyedReplicasCompareStripped) {
  // Virtualized mode: same packet over three tunnels, different tags.
  sim::Simulator sim;
  Network net(sim);
  auto& edge = net.add_node<openflow::OpenFlowSwitch>("edge");
  auto& in = net.add_node<Probe>("in");
  auto& out = net.add_node<Probe>("out");
  net.connect(edge, in);
  net.connect(edge, out);

  openflow::FlowSpec punt;
  punt.match.with_in_port(0);
  punt.actions = {openflow::OutputAction::controller()};
  punt.priority = 20;
  edge.table().add(std::move(punt), sim.now());
  openflow::FlowSpec route;
  route.match.with_dl_dst(net::MacAddress::from_id(2));
  route.actions = {openflow::OutputAction::to(1)};
  route.priority = 10;
  edge.table().add(std::move(route), sim.now());

  CompareService service;
  controller::Controller controller(sim, "cmp", service);
  CompareService::EdgeConfig config;
  config.replica_vlans = {{100, 0}, {101, 1}, {102, 2}};
  config.compare.k = 3;
  service.configure_edge("edge", std::move(config));
  controller.attach(edge);

  in.send(0, udp_packet(1, net::VlanTag{.vid = 100}));
  in.send(0, udp_packet(1, net::VlanTag{.vid = 101}));
  sim.run_for(sim::Duration::milliseconds(5));
  ASSERT_EQ(out.received.size(), 1u);
  // Released packet is the *untagged* original.
  const auto parsed = net::parse_packet(out.received[0].second);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->vlan.has_value());
}

TEST(CompareService, UntaggedPacketInVlanModeDropped) {
  sim::Simulator sim;
  Network net(sim);
  auto& edge = net.add_node<openflow::OpenFlowSwitch>("edge");
  auto& in = net.add_node<Probe>("in");
  net.connect(edge, in);
  openflow::FlowSpec punt;
  punt.match.with_in_port(0);
  punt.actions = {openflow::OutputAction::controller()};
  edge.table().add(std::move(punt), sim.now());

  CompareService service;
  controller::Controller controller(sim, "cmp", service);
  CompareService::EdgeConfig config;
  config.replica_vlans = {{100, 0}};
  config.compare.k = 3;
  service.configure_edge("edge", std::move(config));
  controller.attach(edge);

  in.send(0, udp_packet(1));  // no tunnel tag
  sim.run_for(sim::Duration::milliseconds(5));
  EXPECT_EQ(service.unknown_port_drops(), 1u);
}

// Regression: the timed unblock lambda captured the edge state and
// dereferenced its control channel unconditionally. An edge that detached
// (switch crash / teardown) while the unblock timer was pending turned
// the recovery into a use-after-detach. The timer must notice the dead
// channel and do nothing.
TEST(CompareService, UnblockTimerSurvivesDetachedEdge) {
  sim::Simulator sim;
  Network net(sim);
  auto& edge = net.add_node<openflow::OpenFlowSwitch>("edge");
  auto& r0 = net.add_node<Probe>("r0");
  auto& r1 = net.add_node<Probe>("r1");
  net.connect(edge, r0);
  net.connect(edge, r1);
  for (device::PortIndex p = 0; p < 2; ++p) {
    openflow::FlowSpec punt;
    punt.match.with_in_port(p);
    punt.actions = {openflow::OutputAction::controller()};
    punt.priority = 20;
    edge.table().add(std::move(punt), sim.now());
  }

  CompareService service;
  controller::Controller controller(sim, "cmp", service);
  CompareService::EdgeConfig config;
  config.replica_ports = {{0, 0}, {1, 1}};
  config.compare.k = 2;
  config.compare.garbage_limit_packets = 5;  // flood trips fast
  config.block_duration = sim::Duration::milliseconds(20);
  service.configure_edge("edge", std::move(config));
  controller.attach(edge);

  // §IV case 2: the same packet from the same replica, over and over.
  for (int i = 0; i < 10; ++i) r0.send(0, udp_packet(1));
  sim.run_for(sim::Duration::milliseconds(5));
  ASSERT_FALSE(service.alarms().empty());
  EXPECT_EQ(service.alarms().front().kind,
            CompareAlarm::Kind::kPortBlocked);

  // The edge goes away while the 20 ms unblock timer is pending.
  service.detach_edge("edge");
  sim.run_for(sim::Duration::milliseconds(50));
  SUCCEED();  // reaching here without a crash is the regression check
}

// --- inband middlebox node ----------------------------------------------

TEST(Middlebox, ReleasesOnQuorumAndIgnoresStragglers) {
  sim::Simulator sim;
  Network net(sim);
  MiddleboxConfig config;
  config.compare.k = 3;
  auto& mb = net.add_node<CompareMiddlebox>("mb", config);
  auto& r0 = net.add_node<Probe>("r0");
  auto& r1 = net.add_node<Probe>("r1");
  auto& r2 = net.add_node<Probe>("r2");
  auto& out = net.add_node<Probe>("out");
  net.connect(mb, r0);
  net.connect(mb, r1);
  net.connect(mb, r2);
  net.connect(mb, out);

  r0.send(0, udp_packet(5));
  r1.send(0, udp_packet(5));
  r2.send(0, udp_packet(5));
  sim.run_for(sim::Duration::milliseconds(5));
  EXPECT_EQ(out.received.size(), 1u);
  EXPECT_EQ(mb.middlebox_stats().released, 1u);
  EXPECT_EQ(mb.core().stats().late_after_release, 1u);
}

TEST(Middlebox, QueueOverflowDrops) {
  sim::Simulator sim;
  Network net(sim);
  MiddleboxConfig config;
  config.compare.k = 3;
  config.queue_limit = 4;
  config.per_packet = sim::Duration::seconds(1);  // glacial service
  auto& mb = net.add_node<CompareMiddlebox>("mb", config);
  auto& r0 = net.add_node<Probe>("r0");
  auto& r1 = net.add_node<Probe>("r1");
  auto& r2 = net.add_node<Probe>("r2");
  auto& out = net.add_node<Probe>("out");
  net.connect(mb, r0);
  net.connect(mb, r1);
  net.connect(mb, r2);
  net.connect(mb, out);

  for (std::uint16_t i = 0; i < 10; ++i) r0.send(0, udp_packet(i));
  sim.run_for(sim::Duration::milliseconds(50));
  EXPECT_GT(mb.middlebox_stats().dropped_queue, 0u);
}

}  // namespace
}  // namespace netco::core
