// Tests for the fat-tree topology and the §VI case study.
#include <gtest/gtest.h>

#include "host/ping.h"
#include "scenario/case_study.h"
#include "topo/fattree.h"

namespace netco::topo {
namespace {

host::PingReport ping_between(FatTreeTopology& topo, host::Host& src,
                              host::Host& dst, int count = 5) {
  host::PingConfig config;
  config.dst_mac = dst.mac();
  config.dst_ip = dst.ip();
  config.count = count;
  config.interval = sim::Duration::milliseconds(2);
  config.timeout = sim::Duration::milliseconds(200);
  host::IcmpPinger pinger(src, config);
  pinger.start();
  const auto deadline = topo.simulator().now() + sim::Duration::seconds(3);
  while (!pinger.finished() && topo.simulator().now() < deadline) {
    topo.simulator().run_for(sim::Duration::milliseconds(10));
  }
  return pinger.report();
}

TEST(FatTree, StructureK4) {
  FatTreeTopology topo(FatTreeOptions{});
  // k=4: 4 pods × (2 edges + 2 aggs) + 4 cores + 16 hosts = 36 nodes.
  EXPECT_EQ(topo.network().nodes().size(), 36u);
  EXPECT_EQ(topo.edge(0, 0).port_count(), 4u);  // 2 hosts + 2 aggs
  EXPECT_EQ(topo.agg(0, 0)->port_count(), 4u);  // 2 edges + 2 cores
  EXPECT_EQ(topo.core(0).port_count(), 4u);     // one per pod
}

TEST(FatTree, SameEdgeHostsReachable) {
  FatTreeTopology topo(FatTreeOptions{});
  const auto report = ping_between(topo, topo.host(0, 0, 0), topo.host(0, 0, 1));
  EXPECT_EQ(report.received, 5);
}

TEST(FatTree, IntraPodCrossEdgeReachable) {
  FatTreeTopology topo(FatTreeOptions{});
  const auto report = ping_between(topo, topo.host(0, 0, 0), topo.host(0, 1, 1));
  EXPECT_EQ(report.received, 5);
}

TEST(FatTree, InterPodReachable) {
  FatTreeTopology topo(FatTreeOptions{});
  const auto report = ping_between(topo, topo.host(0, 0, 0), topo.host(3, 1, 1));
  EXPECT_EQ(report.received, 5);
}

TEST(FatTree, AllPairsSample) {
  // A small all-pairs sweep: every host can reach a representative of
  // every distance class (same edge, cross edge, cross pod).
  FatTreeTopology topo(FatTreeOptions{});
  struct Pair {
    int p1, e1, i1, p2, e2, i2;
  };
  const Pair pairs[] = {
      {1, 0, 0, 1, 0, 1}, {1, 0, 0, 1, 1, 0}, {2, 1, 1, 3, 0, 0},
      {3, 1, 0, 0, 0, 1}, {2, 0, 1, 2, 1, 1},
  };
  for (const auto& pair : pairs) {
    const auto report = ping_between(topo, topo.host(pair.p1, pair.e1, pair.i1),
                                     topo.host(pair.p2, pair.e2, pair.i2), 3);
    EXPECT_EQ(report.received, 3)
        << pair.p1 << pair.e1 << pair.i1 << "→" << pair.p2 << pair.e2
        << pair.i2;
  }
}

TEST(FatTree, LargerArityK6Builds) {
  FatTreeOptions options;
  options.k = 6;
  FatTreeTopology topo(options);
  // k=6: 6 pods × (3+3) + 9 cores + 54 hosts = 99 nodes.
  EXPECT_EQ(topo.network().nodes().size(), 99u);
  const auto report = ping_between(topo, topo.host(0, 0, 0), topo.host(5, 2, 2));
  EXPECT_EQ(report.received, 5);
}

TEST(FatTreeDeathTest, RejectsInvalidOptionsLoudly) {
  // An odd or degenerate arity, or a combiner position outside the grid,
  // must die at construction — a silently-wrong fabric would invalidate
  // every measurement taken on it.
  FatTreeOptions odd;
  odd.k = 5;
  EXPECT_DEATH(FatTreeTopology{odd}, "arity must be even");
  FatTreeOptions zero;
  zero.k = 0;
  EXPECT_DEATH(FatTreeTopology{zero}, "arity must be even");
  FatTreeOptions bad_pod;
  bad_pod.combine_agg = AggPosition{.pod = 4, .index = 0};
  EXPECT_DEATH(FatTreeTopology{bad_pod}, "combiner pod out of range");
  FatTreeOptions bad_index;
  bad_index.combine_agg = AggPosition{.pod = 0, .index = 2};
  EXPECT_DEATH(FatTreeTopology{bad_index},
               "combiner aggregation index out of range");
  FatTreeOptions no_replicas;
  no_replicas.combine_agg = AggPosition{.pod = 0, .index = 0};
  no_replicas.combiner.k = 0;
  EXPECT_DEATH(FatTreeTopology{no_replicas}, "at least one replica");
}

TEST(FatTree, CombinerWrappedAggStillRoutes) {
  FatTreeOptions options;
  options.combine_agg = AggPosition{.pod = 0, .index = 0};
  options.combiner.k = 3;
  FatTreeTopology topo(options);
  EXPECT_EQ(topo.agg(0, 0), nullptr);
  EXPECT_EQ(topo.combiner().replicas.size(), 3u);
  EXPECT_EQ(topo.combiner().edges.size(), 4u);  // 2 edges + 2 cores

  // Intra-pod traffic through the wrapped position.
  const auto intra = ping_between(topo, topo.host(0, 0, 0), topo.host(0, 1, 0));
  EXPECT_EQ(intra.received, 5);
  // Inter-pod traffic through the wrapped position (via core).
  const auto inter = ping_between(topo, topo.host(0, 0, 1), topo.host(2, 0, 0));
  EXPECT_EQ(inter.received, 5);
  // Traffic into the pod from outside.
  const auto inbound = ping_between(topo, topo.host(1, 0, 0), topo.host(0, 0, 0));
  EXPECT_EQ(inbound.received, 5);
}

// --- §VI case study ----------------------------------------------------------

TEST(CaseStudy, BaselineTenPerfectCycles) {
  const auto r = scenario::run_case_study(scenario::CaseStudyMode::kBaseline);
  EXPECT_EQ(r.requests_sent, 10);
  EXPECT_EQ(r.replies_received_at_vm1, 10);
  EXPECT_EQ(r.requests_at_fw1, 10u);
  EXPECT_EQ(r.mirrored_at_core, 0u);
  EXPECT_EQ(r.stray_at_hosts, 0u);
}

TEST(CaseStudy, AttackDoublesRequestsAndKillsReplies) {
  const auto r = scenario::run_case_study(scenario::CaseStudyMode::kAttacked);
  // The paper: "After 10 requests sent, we witness 20 requests arriving at
  // fw1 and 0 responses arriving at vm1."
  EXPECT_EQ(r.requests_sent, 10);
  EXPECT_EQ(r.requests_at_fw1, 20u);
  EXPECT_EQ(r.replies_received_at_vm1, 0);
  EXPECT_EQ(r.mirrored_at_core, 10u);
  EXPECT_GT(r.attacker_packets_attacked, 0u);
}

TEST(CaseStudy, NetcoRestoresAllCycles) {
  const auto r = scenario::run_case_study(scenario::CaseStudyMode::kProtected);
  EXPECT_EQ(r.requests_sent, 10);
  EXPECT_EQ(r.replies_received_at_vm1, 10);
  EXPECT_EQ(r.requests_at_fw1, 10u);  // the mirror never escaped
  EXPECT_EQ(r.mirrored_at_core, 0u);
  EXPECT_EQ(r.stray_at_hosts, 0u);
  // Mirrored copies arrived at the compare but never left it; the
  // malicious replica's dropped responses still lost the vote 2:1.
  EXPECT_GT(r.compare_evicted_minority, 0u);
  EXPECT_EQ(r.compare_released, 20u);  // 10 requests + 10 replies
  EXPECT_GT(r.attacker_packets_attacked, 0u);
}

TEST(CaseStudy, DeterministicAcrossRuns) {
  const auto a = scenario::run_case_study(scenario::CaseStudyMode::kAttacked,
                                          10, 7);
  const auto b = scenario::run_case_study(scenario::CaseStudyMode::kAttacked,
                                          10, 7);
  EXPECT_EQ(a.requests_at_fw1, b.requests_at_fw1);
  EXPECT_EQ(a.mirrored_at_core, b.mirrored_at_core);
}

TEST(CaseStudy, MoreCyclesScaleLinearly) {
  const auto r = scenario::run_case_study(scenario::CaseStudyMode::kAttacked,
                                          25);
  EXPECT_EQ(r.requests_at_fw1, 50u);
  EXPECT_EQ(r.replies_received_at_vm1, 0);
}

}  // namespace
}  // namespace netco::topo
