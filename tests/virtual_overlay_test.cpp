// Tests for the §VII virtualized NetCo: tunnel splitting, tag-keyed
// comparison, transparency, and attack filtering on overlay paths.
#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "host/ping.h"
#include "host/udp_app.h"
#include "topo/virtual_overlay.h"

namespace netco::topo {
namespace {

host::PingReport overlay_ping(VirtualOverlayTopology& topo, int count = 10) {
  host::PingConfig config;
  config.dst_mac = topo.host_b().mac();
  config.dst_ip = topo.host_b().ip();
  config.count = count;
  config.interval = sim::Duration::milliseconds(2);
  config.timeout = sim::Duration::milliseconds(200);
  host::IcmpPinger pinger(topo.host_a(), config);
  pinger.start();
  const auto deadline = topo.simulator().now() + sim::Duration::seconds(3);
  while (!pinger.finished() && topo.simulator().now() < deadline) {
    topo.simulator().run_for(sim::Duration::milliseconds(10));
  }
  return pinger.report();
}

TEST(VirtualOverlay, BenignTrafficBothDirections) {
  VirtualOverlayTopology topo({});
  const auto report = overlay_ping(topo);
  EXPECT_EQ(report.received, 10);
  EXPECT_EQ(report.duplicates, 0);
  // Hosts never see a tunnel tag (transparency).
  EXPECT_EQ(topo.host_b().stats().rx_stray, 0u);
}

TEST(VirtualOverlay, ZeroAdditionalRouters) {
  // The §VII cost argument: a physical k=3 combiner for one 2-port router
  // adds 3 replicas + 2 edges = 5 boxes; the virtual one adds none — it
  // reuses the k existing paths and only needs trusted edges, which any
  // NetCo deployment needs anyway.
  VirtualOverlayOptions options;
  options.paths = 3;
  options.hops_per_path = 2;
  VirtualOverlayTopology topo(options);
  // Node count: 2 hosts + 2 edges + 3 paths × 2 hops = 10. Every
  // path switch is pre-existing fabric, not NetCo hardware.
  EXPECT_EQ(topo.network().nodes().size(), 10u);
}

TEST(VirtualOverlay, PathDropFilteredByMajority) {
  VirtualOverlayTopology topo({});
  adversary::DropBehavior drop(adversary::match_all());
  topo.path_switch(0, 0).set_interceptor(&drop);
  const auto report = overlay_ping(topo);
  EXPECT_EQ(report.received, 10);
}

TEST(VirtualOverlay, PathCorruptionFilteredByMajority) {
  VirtualOverlayTopology topo({});
  adversary::ModifyBehavior modify(adversary::match_all(),
                                   adversary::ModifyBehavior::corrupt_payload());
  topo.path_switch(1, 0).set_interceptor(&modify);
  const auto report = overlay_ping(topo);
  EXPECT_EQ(report.received, 10);
  EXPECT_EQ(topo.host_b().stats().rx_bad_checksum, 0u);

  // The corrupted copies died inside the compare as minority entries.
  topo.simulator().run_for(sim::Duration::milliseconds(100));
  const auto* stats = topo.compare().stats_for("sB");
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->evicted_timeout, 0u);
}

TEST(VirtualOverlay, TunnelRetagAttackFiltered) {
  // A path switch rewrites the tunnel tag (tries to impersonate another
  // path / double-vote). The copy then counts for the wrong replica id —
  // either as a same-replica duplicate or as a minority variant — and the
  // honest paths still win.
  VirtualOverlayTopology topo({});
  adversary::ModifyBehavior retag(adversary::match_all(),
                                  adversary::ModifyBehavior::retag_vlan(101));
  topo.path_switch(0, 0).set_interceptor(&retag);
  const auto report = overlay_ping(topo);
  EXPECT_EQ(report.received, 10);
  EXPECT_EQ(report.duplicates, 0);
}

TEST(VirtualOverlay, TwoMaliciousPathsDefeatK3) {
  VirtualOverlayTopology topo({});
  adversary::DropBehavior drop0(adversary::match_all());
  adversary::DropBehavior drop1(adversary::match_all());
  topo.path_switch(0, 0).set_interceptor(&drop0);
  topo.path_switch(1, 0).set_interceptor(&drop1);
  const auto report = overlay_ping(topo, 5);
  EXPECT_EQ(report.received, 0);
}

TEST(VirtualOverlay, FivePathsTolerateTwo) {
  VirtualOverlayOptions options;
  options.paths = 5;
  VirtualOverlayTopology topo(options);
  adversary::DropBehavior drop0(adversary::match_all());
  adversary::ModifyBehavior modify(adversary::match_all(),
                                   adversary::ModifyBehavior::corrupt_payload());
  topo.path_switch(0, 0).set_interceptor(&drop0);
  topo.path_switch(1, 0).set_interceptor(&modify);
  const auto report = overlay_ping(topo);
  EXPECT_EQ(report.received, 10);
}

TEST(VirtualOverlay, UdpThroughputFlowsThroughTunnels) {
  VirtualOverlayTopology topo({});
  host::UdpSenderConfig config;
  config.dst_mac = topo.host_b().mac();
  config.dst_ip = topo.host_b().ip();
  config.rate = DataRate::megabits_per_sec(50);
  host::UdpSender sender(topo.host_a(), config);
  host::UdpSink sink(topo.host_b(), config.dst_port);
  sender.start();
  topo.simulator().run_for(sim::Duration::milliseconds(300));
  sender.stop();
  topo.simulator().run_for(sim::Duration::milliseconds(50));
  const auto report = sink.report();
  EXPECT_LT(report.loss_rate, 0.01);
  EXPECT_GT(report.unique_received, 700u);  // ~50 Mb/s × 0.3 s / 1478 B
  EXPECT_EQ(report.duplicates, 0u);
}

}  // namespace
}  // namespace netco::topo
