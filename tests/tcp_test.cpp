// Behavioural tests for the Reno/NewReno TCP implementation: bulk
// transfer, loss recovery (fast retransmit and RTO), duplication tolerance
// (the DSACK property the Dup scenarios depend on), and reordering.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "device/network.h"
#include "host/host.h"
#include "host/tcp.h"
#include "net/headers.h"

namespace netco::host {
namespace {

using device::Network;

/// Middle node that can drop, duplicate, or delay packets deterministically.
class Middlebox : public device::Node {
 public:
  using Node::Node;

  void handle_packet(device::PortIndex in_port, net::Packet packet) override {
    const device::PortIndex out = in_port == 0 ? 1 : 0;
    const auto parsed = net::parse_packet(packet);
    const bool is_data =
        parsed && parsed->tcp && parsed->payload_offset < packet.size();
    ++seen_;
    if (is_data) {
      ++data_seen_;
      if (drop_every > 0 &&
          data_seen_ % static_cast<std::uint64_t>(drop_every) == 0) {
        ++dropped_;
        return;
      }
      for (int i = 0; i < duplicate_copies; ++i) send(out, packet);
    }
    send(out, std::move(packet));
  }

  int drop_every = 0;        ///< drop every Nth data segment (0 = off)
  int duplicate_copies = 0;  ///< extra copies of each data segment
  std::uint64_t dropped() const { return dropped_; }

 private:
  std::uint64_t seen_ = 0;
  std::uint64_t data_seen_ = 0;
  std::uint64_t dropped_ = 0;
};

struct TcpFixture {
  sim::Simulator sim;
  Network net{sim};
  Host& a;
  Host& b;
  Middlebox& mid;

  TcpFixture() : TcpFixture(HostProfile{}) {}
  explicit TcpFixture(HostProfile profile)
      : a(net.add_node<Host>("a", net::MacAddress::from_id(1),
                             net::Ipv4Address::from_id(1), profile)),
        b(net.add_node<Host>("b", net::MacAddress::from_id(2),
                             net::Ipv4Address::from_id(2), profile)),
        mid(net.add_node<Middlebox>("mid")) {
    net.connect(a, mid);
    net.connect(mid, b);
  }

  TcpConfig sender_config() const {
    TcpConfig c;
    c.peer_mac = b.mac();
    c.peer_ip = b.ip();
    return c;
  }
  TcpConfig receiver_config() const {
    TcpConfig c;
    c.peer_mac = a.mac();
    c.peer_ip = a.ip();
    return c;
  }
};

TEST(Tcp, CleanPathBulkTransfer) {
  TcpFixture f;
  TcpSender sender(f.a, f.sender_config());
  TcpReceiver receiver(f.b, f.receiver_config());
  sender.start();
  f.sim.run_until(sim::TimePoint::origin() + sim::Duration::milliseconds(500));
  EXPECT_EQ(sender.stats().retransmissions, 0u);
  EXPECT_EQ(sender.stats().rto_fires, 0u);
  EXPECT_GT(sender.stats().bytes_acked, 1'000'000u);
  // Receiver delivered exactly what the sender counts acked (±1 window).
  EXPECT_GE(receiver.stats().bytes_delivered, sender.stats().bytes_acked);
}

TEST(Tcp, DeliveredDataIsInOrderPrefix) {
  TcpFixture f;
  TcpSender sender(f.a, f.sender_config());
  TcpReceiver receiver(f.b, f.receiver_config());
  f.mid.drop_every = 13;
  sender.start();
  f.sim.run_until(sim::TimePoint::origin() + sim::Duration::milliseconds(500));
  // bytes_delivered counts only the in-order prefix: it can never exceed
  // (segments pushed in total) and never goes backwards — invariant
  // enforced by construction; check consistency with the ACK stream.
  EXPECT_LE(sender.stats().bytes_acked,
            receiver.stats().bytes_delivered + 64 * 1460);
}

TEST(Tcp, RecoversFromPeriodicLossViaFastRetransmit) {
  TcpFixture f;
  TcpSender sender(f.a, f.sender_config());
  TcpReceiver receiver(f.b, f.receiver_config());
  f.mid.drop_every = 50;  // 2% deterministic loss
  sender.start();
  f.sim.run_until(sim::TimePoint::origin() + sim::Duration::seconds(1));
  EXPECT_GT(f.mid.dropped(), 0u);
  EXPECT_GT(sender.stats().fast_retransmits, 0u);
  EXPECT_GT(sender.stats().bytes_acked, 500'000u);  // still making progress
}

TEST(Tcp, SrttConvergesToPathRtt) {
  TcpFixture f;
  TcpSender sender(f.a, f.sender_config());
  TcpReceiver receiver(f.b, f.receiver_config());
  sender.start();
  f.sim.run_until(sim::TimePoint::origin() + sim::Duration::milliseconds(300));
  EXPECT_GT(sender.stats().srtt_ms, 0.0);
  EXPECT_LT(sender.stats().srtt_ms, 50.0);
}

TEST(Tcp, DuplicationAloneCausesNoRetransmission) {
  // The Dup-scenario property: k copies of every segment must not trigger
  // spurious fast retransmits (DSACK semantics), only duplicate counts.
  // The receiver gets a fast CPU so the 3× packet load causes no backlog
  // loss — this isolates the duplication effect from the overload effect.
  HostProfile fast;
  fast.rx_cost = sim::Duration::nanoseconds(500);
  fast.ack_tx_cost = sim::Duration::nanoseconds(500);
  TcpFixture f(fast);
  TcpSender sender(f.a, f.sender_config());
  TcpReceiver receiver(f.b, f.receiver_config());
  f.mid.duplicate_copies = 2;  // 3 copies total, no loss
  sender.start();
  f.sim.run_until(sim::TimePoint::origin() + sim::Duration::milliseconds(200));
  EXPECT_GT(receiver.stats().duplicate_segments, 0u);
  EXPECT_EQ(sender.stats().fast_retransmits, 0u);
  EXPECT_GT(sender.stats().bytes_acked, 100'000u);
}

TEST(Tcp, LossPlusDuplicationStillRecovers) {
  TcpFixture f;
  TcpSender sender(f.a, f.sender_config());
  TcpReceiver receiver(f.b, f.receiver_config());
  f.mid.duplicate_copies = 2;
  f.mid.drop_every = 40;
  sender.start();
  f.sim.run_until(sim::TimePoint::origin() + sim::Duration::seconds(1));
  EXPECT_GT(sender.stats().bytes_acked, 200'000u);
}

TEST(Tcp, TotalBlackoutTriggersRtoAndBackoff) {
  TcpFixture f;
  TcpSender sender(f.a, f.sender_config());
  TcpReceiver receiver(f.b, f.receiver_config());
  f.mid.drop_every = 1;  // everything dies
  sender.start();
  // With no RTT sample the initial RTO is 1 s; backoff doubles it, so the
  // first two fires land at ~1 s and ~3 s.
  f.sim.run_until(sim::TimePoint::origin() + sim::Duration::seconds(4));
  EXPECT_GE(sender.stats().rto_fires, 2u);
  EXPECT_EQ(sender.stats().bytes_acked, 0u);
  EXPECT_EQ(receiver.stats().bytes_delivered, 0u);
}

TEST(Tcp, ResumesAfterBlackoutEnds) {
  TcpFixture f;
  TcpSender sender(f.a, f.sender_config());
  TcpReceiver receiver(f.b, f.receiver_config());
  f.mid.drop_every = 1;
  sender.start();
  f.sim.run_until(sim::TimePoint::origin() + sim::Duration::seconds(1));
  EXPECT_EQ(sender.stats().bytes_acked, 0u);
  f.mid.drop_every = 0;  // path heals
  f.sim.run_until(sim::TimePoint::origin() + sim::Duration::seconds(3));
  EXPECT_GT(sender.stats().bytes_acked, 100'000u);
}

TEST(Tcp, StopFreezesSender) {
  TcpFixture f;
  TcpSender sender(f.a, f.sender_config());
  TcpReceiver receiver(f.b, f.receiver_config());
  sender.start();
  f.sim.run_until(sim::TimePoint::origin() + sim::Duration::milliseconds(100));
  sender.stop();
  const auto segments = sender.stats().segments_sent;
  f.sim.run_until(sim::TimePoint::origin() + sim::Duration::milliseconds(300));
  EXPECT_EQ(sender.stats().segments_sent, segments);
}

TEST(Tcp, CwndGrowsFromInitialWindow) {
  TcpFixture f;
  TcpConfig config = f.sender_config();
  config.init_cwnd_segments = 2;
  TcpSender sender(f.a, config);
  TcpConfig rconfig = f.receiver_config();
  TcpReceiver receiver(f.b, rconfig);
  const double initial = sender.cwnd();
  EXPECT_EQ(initial, 2.0 * 1460);
  sender.start();
  f.sim.run_until(sim::TimePoint::origin() + sim::Duration::milliseconds(100));
  EXPECT_GT(sender.cwnd(), initial);
}

TEST(Tcp, CwndNeverExceedsReceiveWindow) {
  TcpFixture f;
  TcpConfig config = f.sender_config();
  config.rwnd = 32 * 1460;
  TcpSender sender(f.a, config);
  TcpReceiver receiver(f.b, f.receiver_config());
  sender.start();
  f.sim.run_until(sim::TimePoint::origin() + sim::Duration::milliseconds(500));
  EXPECT_LE(sender.cwnd(), static_cast<double>(config.rwnd) + 1.0);
}

}  // namespace
}  // namespace netco::host
