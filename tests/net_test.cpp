// Unit tests for the packet/header layer: addresses, build/parse
// round-trips, checksums, in-place mutators, and a parse-robustness
// property sweep over random bytes.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "net/address.h"
#include "net/checksum.h"
#include "net/headers.h"
#include "net/packet.h"

namespace netco::net {
namespace {

std::vector<std::byte> make_payload(std::size_t n, std::uint8_t fill = 0xAB) {
  return std::vector<std::byte>(n, std::byte{fill});
}

EthernetHeader eth_ab() {
  return {.dst = MacAddress::from_id(2), .src = MacAddress::from_id(1)};
}

Ipv4Header ip_ab() {
  return {.src = Ipv4Address::from_id(1),
          .dst = Ipv4Address::from_id(2),
          .identification = 77};
}

TEST(Address, MacToString) {
  EXPECT_EQ(MacAddress::from_id(0x010203).to_string(), "02:00:00:01:02:03");
  EXPECT_EQ(MacAddress::broadcast().to_string(), "ff:ff:ff:ff:ff:ff");
}

TEST(Address, MacPredicates) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
  EXPECT_FALSE(MacAddress::from_id(5).is_broadcast());
  EXPECT_FALSE(MacAddress::from_id(5).is_multicast());
}

TEST(Address, Ipv4ToString) {
  EXPECT_EQ(Ipv4Address::from_octets(10, 0, 1, 200).to_string(), "10.0.1.200");
  EXPECT_EQ(Ipv4Address::from_id(258).to_string(), "10.0.1.2");
}

TEST(Address, OrderingAndHash) {
  EXPECT_LT(MacAddress::from_id(1), MacAddress::from_id(2));
  EXPECT_EQ(std::hash<MacAddress>{}(MacAddress::from_id(9)),
            std::hash<MacAddress>{}(MacAddress::from_id(9)));
  EXPECT_LT(Ipv4Address::from_id(1), Ipv4Address::from_id(2));
}

TEST(Packet, BigEndianAccessors) {
  Packet p = Packet::zeroed(8);
  p.set_u16be(0, 0x1234);
  p.set_u32be(2, 0xDEADBEEF);
  EXPECT_EQ(p.u16be(0), 0x1234);
  EXPECT_EQ(p.u32be(2), 0xDEADBEEFu);
  EXPECT_EQ(p.u8(2), 0xDE);
  EXPECT_EQ(p.u8(5), 0xEF);
}

TEST(Packet, MacRoundTrip) {
  Packet p = Packet::zeroed(12);
  p.set_mac_at(3, MacAddress::from_id(0xABCDEF));
  EXPECT_EQ(p.mac_at(3), MacAddress::from_id(0xABCDEF));
}

TEST(Packet, InsertAndErase) {
  Packet p = Packet::zeroed(4);
  p.set_u8(0, 1);
  p.set_u8(1, 2);
  p.set_u8(2, 3);
  p.set_u8(3, 4);
  p.insert_zeros(2, 2);
  EXPECT_EQ(p.size(), 6u);
  EXPECT_EQ(p.u8(1), 2);
  EXPECT_EQ(p.u8(2), 0);
  EXPECT_EQ(p.u8(4), 3);
  p.erase(2, 2);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.u8(2), 3);
}

TEST(Packet, EqualityIsBitwise) {
  Packet a = Packet::zeroed(64);
  Packet b = Packet::zeroed(64);
  EXPECT_EQ(a, b);
  b.set_u8(63, 1);
  EXPECT_NE(a, b);
}

TEST(Packet, ContentHashSensitiveToEveryByte) {
  Packet a = Packet::zeroed(64);
  for (std::size_t i = 0; i < 64; ++i) {
    Packet b = a;
    b.set_u8(i, 0xFF);
    EXPECT_NE(a.content_hash(), b.content_hash()) << "byte " << i;
  }
}

TEST(Packet, PrefixHashIgnoresTail) {
  Packet a = Packet::zeroed(64);
  Packet b = a;
  b.set_u8(60, 0x55);
  EXPECT_EQ(a.prefix_hash(32), b.prefix_hash(32));
  EXPECT_NE(a.prefix_hash(64), b.prefix_hash(64));
}

TEST(Checksum, Rfc1071KnownVector) {
  // Classic example: bytes 00 01 f2 03 f4 f5 f6 f7 → checksum 0x220d.
  const std::byte data[] = {std::byte{0x00}, std::byte{0x01}, std::byte{0xf2},
                            std::byte{0x03}, std::byte{0xf4}, std::byte{0xf5},
                            std::byte{0xf6}, std::byte{0xf7}};
  EXPECT_EQ(internet_checksum(data), 0x220D);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::byte data[] = {std::byte{0xAB}};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xAB00u));
}

TEST(Headers, UdpRoundTrip) {
  const auto payload = make_payload(100);
  Packet p = build_udp(eth_ab(), std::nullopt, ip_ab(),
                       UdpHeader{.src_port = 1111, .dst_port = 2222}, payload);
  const auto parsed = parse_packet(p);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->eth.src, MacAddress::from_id(1));
  EXPECT_EQ(parsed->eth.dst, MacAddress::from_id(2));
  ASSERT_TRUE(parsed->ipv4.has_value());
  EXPECT_EQ(parsed->ipv4->proto, IpProto::Udp);
  EXPECT_EQ(parsed->ipv4->identification, 77);
  ASSERT_TRUE(parsed->udp.has_value());
  EXPECT_EQ(parsed->udp->src_port, 1111);
  EXPECT_EQ(parsed->udp->dst_port, 2222);
  EXPECT_EQ(p.size() - parsed->payload_offset, 100u);
  EXPECT_TRUE(checksums_valid(p));
}

TEST(Headers, TcpRoundTrip) {
  TcpHeader tcp;
  tcp.src_port = 5001;
  tcp.dst_port = 5002;
  tcp.seq = 0xAABBCCDD;
  tcp.ack = 0x11223344;
  tcp.flags = kTcpAck | kTcpPsh;
  tcp.window = 4321;
  Packet p = build_tcp(eth_ab(), std::nullopt, ip_ab(), tcp, make_payload(50));
  const auto parsed = parse_packet(p);
  ASSERT_TRUE(parsed && parsed->tcp);
  EXPECT_EQ(parsed->tcp->seq, 0xAABBCCDDu);
  EXPECT_EQ(parsed->tcp->ack, 0x11223344u);
  EXPECT_EQ(parsed->tcp->flags, kTcpAck | kTcpPsh);
  EXPECT_EQ(parsed->tcp->window, 4321);
  EXPECT_FALSE(parsed->tcp->sack.has_value());
  EXPECT_EQ(p.size() - parsed->payload_offset, 50u);
  EXPECT_TRUE(checksums_valid(p));
}

TEST(Headers, TcpSackOptionRoundTrip) {
  TcpHeader tcp;
  tcp.src_port = 1;
  tcp.dst_port = 2;
  tcp.sack = {{1000, 2460}};
  Packet p = build_tcp(eth_ab(), std::nullopt, ip_ab(), tcp, {});
  const auto parsed = parse_packet(p);
  ASSERT_TRUE(parsed && parsed->tcp);
  ASSERT_TRUE(parsed->tcp->sack.has_value());
  EXPECT_EQ(parsed->tcp->sack->first, 1000u);
  EXPECT_EQ(parsed->tcp->sack->second, 2460u);
  EXPECT_TRUE(checksums_valid(p));
}

TEST(Headers, IcmpEchoRoundTrip) {
  Packet p = build_icmp_echo(eth_ab(), std::nullopt, ip_ab(),
                             IcmpEchoHeader{.type = kIcmpEchoRequest,
                                            .id = 42,
                                            .seq = 7},
                             make_payload(56));
  const auto parsed = parse_packet(p);
  ASSERT_TRUE(parsed && parsed->icmp);
  EXPECT_EQ(parsed->icmp->type, kIcmpEchoRequest);
  EXPECT_EQ(parsed->icmp->id, 42);
  EXPECT_EQ(parsed->icmp->seq, 7);
  EXPECT_TRUE(checksums_valid(p));
}

TEST(Headers, VlanTagRoundTrip) {
  Packet p = build_udp(eth_ab(), VlanTag{.vid = 123, .pcp = 5}, ip_ab(),
                       UdpHeader{.src_port = 1, .dst_port = 2},
                       make_payload(20));
  const auto parsed = parse_packet(p);
  ASSERT_TRUE(parsed && parsed->vlan);
  EXPECT_EQ(parsed->vlan->vid, 123);
  EXPECT_EQ(parsed->vlan->pcp, 5);
  ASSERT_TRUE(parsed->udp);
  EXPECT_TRUE(checksums_valid(p));
}

TEST(Headers, RuntFramesRejected) {
  EXPECT_FALSE(parse_packet(Packet::zeroed(13)).has_value());
  EXPECT_FALSE(parse_packet(Packet{}).has_value());
}

TEST(Headers, NonIpPassesThroughWithoutL3) {
  Packet p = build_ethernet(
      EthernetHeader{.dst = MacAddress::from_id(2),
                     .src = MacAddress::from_id(1),
                     .ethertype = 0x8899},
      std::nullopt, make_payload(10));
  const auto parsed = parse_packet(p);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->ipv4.has_value());
  EXPECT_EQ(parsed->eth.ethertype, 0x8899);
  EXPECT_TRUE(checksums_valid(p));  // nothing to verify for non-IP
}

TEST(Headers, TruncatedIpv4Rejected) {
  Packet p = build_udp(eth_ab(), std::nullopt, ip_ab(),
                       UdpHeader{.src_port = 1, .dst_port = 2},
                       make_payload(20));
  p.resize(20);  // cut inside the IPv4 header
  EXPECT_FALSE(parse_packet(p).has_value());
}

TEST(Mutators, SetDlDstRewrites) {
  Packet p = build_udp(eth_ab(), std::nullopt, ip_ab(),
                       UdpHeader{.src_port = 1, .dst_port = 2},
                       make_payload(20));
  set_dl_dst(p, MacAddress::from_id(99));
  EXPECT_EQ(parse_packet(p)->eth.dst, MacAddress::from_id(99));
}

TEST(Mutators, SetVlanInsertsWhenUntagged) {
  Packet p = build_udp(eth_ab(), std::nullopt, ip_ab(),
                       UdpHeader{.src_port = 1, .dst_port = 2},
                       make_payload(20));
  const std::size_t before = p.size();
  set_vlan(p, 555);
  EXPECT_EQ(p.size(), before + 4);
  const auto parsed = parse_packet(p);
  ASSERT_TRUE(parsed && parsed->vlan);
  EXPECT_EQ(parsed->vlan->vid, 555);
  EXPECT_TRUE(parsed->udp.has_value());  // inner layers intact
}

TEST(Mutators, SetVlanModifiesExistingTag) {
  Packet p = build_udp(eth_ab(), VlanTag{.vid = 1}, ip_ab(),
                       UdpHeader{.src_port = 1, .dst_port = 2},
                       make_payload(20));
  const std::size_t before = p.size();
  set_vlan(p, 777);
  EXPECT_EQ(p.size(), before);  // no second tag
  EXPECT_EQ(parse_packet(p)->vlan->vid, 777);
}

TEST(Mutators, StripVlanRemovesTag) {
  Packet p = build_udp(eth_ab(), VlanTag{.vid = 9}, ip_ab(),
                       UdpHeader{.src_port = 1, .dst_port = 2},
                       make_payload(20));
  strip_vlan(p);
  const auto parsed = parse_packet(p);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->vlan.has_value());
  EXPECT_TRUE(parsed->udp.has_value());
  strip_vlan(p);  // idempotent on untagged frames
  EXPECT_TRUE(parse_packet(p)->udp.has_value());
}

TEST(Mutators, SetVlanThenStripRestoresOriginal) {
  Packet p = build_udp(eth_ab(), std::nullopt, ip_ab(),
                       UdpHeader{.src_port = 1, .dst_port = 2},
                       make_payload(30));
  const Packet original = p;
  set_vlan(p, 100);
  EXPECT_NE(p, original);
  strip_vlan(p);
  EXPECT_EQ(p, original);  // the §VII tunnel must be transparent
}

TEST(Mutators, SetNwDstFixesChecksums) {
  Packet p = build_udp(eth_ab(), std::nullopt, ip_ab(),
                       UdpHeader{.src_port = 1, .dst_port = 2},
                       make_payload(20));
  set_nw_dst(p, Ipv4Address::from_id(200));
  EXPECT_EQ(parse_packet(p)->ipv4->dst, Ipv4Address::from_id(200));
  EXPECT_TRUE(checksums_valid(p));
}

TEST(Mutators, CorruptByteBreaksChecksum) {
  Packet p = build_udp(eth_ab(), std::nullopt, ip_ab(),
                       UdpHeader{.src_port = 1, .dst_port = 2},
                       make_payload(20));
  corrupt_byte(p, p.size() - 1);
  EXPECT_FALSE(checksums_valid(p));
  fix_checksums(p);
  EXPECT_TRUE(checksums_valid(p));
}

TEST(Mutators, TcpChecksumDetectsCorruption) {
  TcpHeader tcp;
  tcp.src_port = 1;
  tcp.dst_port = 2;
  Packet p = build_tcp(eth_ab(), std::nullopt, ip_ab(), tcp,
                       make_payload(40));
  EXPECT_TRUE(checksums_valid(p));
  corrupt_byte(p, p.size() - 1);
  EXPECT_FALSE(checksums_valid(p));
}

TEST(Mutators, IcmpChecksumDetectsCorruption) {
  Packet p = build_icmp_echo(eth_ab(), std::nullopt, ip_ab(),
                             IcmpEchoHeader{}, make_payload(32));
  EXPECT_TRUE(checksums_valid(p));
  corrupt_byte(p, p.size() - 1);
  EXPECT_FALSE(checksums_valid(p));
}

// Property: the parser never crashes or mis-indexes on arbitrary bytes.
class ParseFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParseFuzz, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 500; ++iteration) {
    const auto size = static_cast<std::size_t>(rng.uniform_u64(200));
    std::vector<std::byte> bytes(size);
    for (auto& b : bytes)
      b = static_cast<std::byte>(rng.uniform_u64(256));
    Packet p(std::move(bytes));
    const auto parsed = parse_packet(p);
    if (parsed) {
      // Offsets must stay within the buffer.
      EXPECT_LE(parsed->l3_offset, p.size());
      EXPECT_LE(parsed->payload_offset, p.size());
    }
    (void)checksums_valid(p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParseFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Property: build→parse is loss-free across payload sizes.
class UdpSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UdpSizeSweep, RoundTripAnyPayload) {
  const auto payload = make_payload(GetParam(), 0x5C);
  Packet p = build_udp(eth_ab(), std::nullopt, ip_ab(),
                       UdpHeader{.src_port = 7, .dst_port = 8}, payload);
  const auto parsed = parse_packet(p);
  ASSERT_TRUE(parsed && parsed->udp);
  EXPECT_EQ(p.size() - parsed->payload_offset, GetParam());
  EXPECT_TRUE(checksums_valid(p));
}

INSTANTIATE_TEST_SUITE_P(Sizes, UdpSizeSweep,
                         ::testing::Values(0, 1, 2, 12, 63, 64, 512, 1000,
                                           1470, 1472));

}  // namespace
}  // namespace netco::net
